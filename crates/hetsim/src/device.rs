//! A simulated accelerator device: memory, DMA channels, execution engine,
//! command streams and the API-cost model.

use crate::bandwidth::{BytesPerSec, LinkModel};
use crate::devmem::DeviceMemory;
use crate::engine::Engine;
use crate::error::{SimError, SimResult};
use crate::kernel::KernelProfile;
use crate::time::{Nanos, TimePoint};

/// Identifies one accelerator within a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifies a command stream on a device. Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamId(pub u32);

/// Accelerator throughput and API-cost specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device model name.
    pub name: &'static str,
    /// Peak single-precision throughput, FLOP/s.
    pub flops: f64,
    /// On-board memory bandwidth.
    pub mem_bw: BytesPerSec,
    /// Fixed pipeline cost added to every kernel (setup + drain).
    pub kernel_overhead: Nanos,
    /// Host-side cost of a `cudaMalloc`-equivalent call.
    pub malloc_cost: Nanos,
    /// Host-side cost of a `cudaFree`-equivalent call.
    pub free_cost: Nanos,
    /// Host-side cost of a kernel-launch call.
    pub launch_cost: Nanos,
    /// Host-side fixed cost of a synchronize call.
    pub sync_cost: Nanos,
}

impl GpuSpec {
    /// NVIDIA G280 (GTX 280), the paper's accelerator: 933 GFLOP/s SP,
    /// 141.7 GB/s GDDR3, CUDA 2.2-era API costs.
    pub fn g280() -> Self {
        GpuSpec {
            name: "NVIDIA G280",
            flops: 933e9,
            mem_bw: BytesPerSec::from_gbps(141.7),
            kernel_overhead: Nanos::from_micros(4),
            malloc_cost: Nanos::from_micros(40),
            free_cost: Nanos::from_micros(10),
            launch_cost: Nanos::from_micros(7),
            sync_cost: Nanos::from_micros(3),
        }
    }

    /// Time one kernel launch occupies the execution engine: a roofline over
    /// the work it reports, plus fixed pipeline overhead.
    pub fn kernel_time(&self, profile: KernelProfile) -> Nanos {
        let compute = profile.flops.max(0.0) / self.flops;
        let memory = profile.bytes.max(0.0) / self.mem_bw.as_bps();
        self.kernel_overhead + Nanos::from_secs_f64(compute.max(memory))
    }
}

/// A simulated accelerator.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    spec: GpuSpec,
    mem: DeviceMemory,
    h2d: Engine,
    d2h: Engine,
    link_h2d: LinkModel,
    link_d2h: LinkModel,
    exec: Engine,
    /// Per-stream horizon: end time of the last operation on the stream.
    streams: Vec<TimePoint>,
}

impl Device {
    /// Creates a device with `mem_size` bytes of on-board memory whose
    /// addresses start at `mem_base`.
    pub fn new(
        id: DeviceId,
        spec: GpuSpec,
        mem_base: u64,
        mem_size: u64,
        link_h2d: LinkModel,
        link_d2h: LinkModel,
    ) -> Self {
        Device {
            id,
            spec,
            mem: DeviceMemory::new(mem_base, mem_size),
            h2d: Engine::new("dma-h2d"),
            d2h: Engine::new("dma-d2h"),
            link_h2d,
            link_d2h,
            exec: Engine::new("gpu-exec"),
            streams: vec![TimePoint::ZERO],
        }
    }

    /// Device identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Throughput/API-cost specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// On-board memory.
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// On-board memory, mutable.
    pub fn mem_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    /// Host-to-device link model.
    pub fn link_h2d(&self) -> &LinkModel {
        &self.link_h2d
    }

    /// Device-to-host link model.
    pub fn link_d2h(&self) -> &LinkModel {
        &self.link_d2h
    }

    /// Host-to-device DMA engine.
    pub fn h2d_engine(&self) -> &Engine {
        &self.h2d
    }

    /// Host-to-device DMA engine, mutable.
    pub fn h2d_engine_mut(&mut self) -> &mut Engine {
        &mut self.h2d
    }

    /// Device-to-host DMA engine.
    pub fn d2h_engine(&self) -> &Engine {
        &self.d2h
    }

    /// Device-to-host DMA engine, mutable.
    pub fn d2h_engine_mut(&mut self) -> &mut Engine {
        &mut self.d2h
    }

    /// DMA engine for `dir` (the per-direction timeline the transfer
    /// planner schedules jobs onto).
    pub fn dma_engine(&self, dir: crate::stats::Direction) -> &Engine {
        match dir {
            crate::stats::Direction::HostToDevice => &self.h2d,
            crate::stats::Direction::DeviceToHost => &self.d2h,
        }
    }

    /// Kernel execution engine.
    pub fn exec_engine(&self) -> &Engine {
        &self.exec
    }

    /// Kernel execution engine, mutable.
    pub fn exec_engine_mut(&mut self) -> &mut Engine {
        &mut self.exec
    }

    /// Creates a new stream and returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(TimePoint::ZERO);
        StreamId(self.streams.len() as u32 - 1)
    }

    /// End time of the last operation enqueued on `stream`.
    ///
    /// # Errors
    /// [`SimError::NoSuchStream`] for unknown streams.
    pub fn stream_horizon(&self, stream: StreamId) -> SimResult<TimePoint> {
        self.streams
            .get(stream.0 as usize)
            .copied()
            .ok_or(SimError::NoSuchStream(stream.0))
    }

    /// Updates the horizon of `stream` to `end`.
    ///
    /// # Errors
    /// [`SimError::NoSuchStream`] for unknown streams.
    pub fn set_stream_horizon(&mut self, stream: StreamId, end: TimePoint) -> SimResult<()> {
        let slot = self
            .streams
            .get_mut(stream.0 as usize)
            .ok_or(SimError::NoSuchStream(stream.0))?;
        *slot = end;
        Ok(())
    }

    /// Instant at which all outstanding work (all streams, all DMA) is done.
    pub fn quiescent_at(&self) -> TimePoint {
        let mut t = self
            .h2d
            .busy_until()
            .max(self.d2h.busy_until())
            .max(self.exec.busy_until());
        for &s in &self.streams {
            t = t.max(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(
            DeviceId(0),
            GpuSpec::g280(),
            0x7f00_0000_0000,
            1 << 20,
            LinkModel::pcie2_x16_h2d(),
            LinkModel::pcie2_x16_d2h(),
        )
    }

    #[test]
    fn kernel_time_roofline() {
        let spec = GpuSpec::g280();
        // Compute bound: 933e9 flops = 1 second of compute.
        let t = spec.kernel_time(KernelProfile::new(933e9, 0.0));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3);
        // Memory bound: 141.7e9 bytes = 1 second of memory traffic.
        let t = spec.kernel_time(KernelProfile::new(0.0, 141.7e9));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3);
        // Empty kernels still pay the pipeline overhead.
        let t = spec.kernel_time(KernelProfile::default());
        assert_eq!(t, spec.kernel_overhead);
    }

    #[test]
    fn streams_start_with_default_stream() {
        let mut d = dev();
        assert_eq!(d.stream_horizon(StreamId(0)).unwrap(), TimePoint::ZERO);
        let s1 = d.create_stream();
        assert_eq!(s1, StreamId(1));
        assert!(d.stream_horizon(StreamId(9)).is_err());
    }

    #[test]
    fn stream_horizon_updates() {
        let mut d = dev();
        let t = TimePoint::from_nanos(500);
        d.set_stream_horizon(StreamId(0), t).unwrap();
        assert_eq!(d.stream_horizon(StreamId(0)).unwrap(), t);
        assert_eq!(d.quiescent_at(), t);
    }

    #[test]
    fn quiescent_considers_all_engines() {
        let mut d = dev();
        d.h2d_engine_mut()
            .reserve(TimePoint::ZERO, Nanos::from_nanos(100));
        d.exec_engine_mut()
            .reserve(TimePoint::ZERO, Nanos::from_nanos(300));
        d.d2h_engine_mut()
            .reserve(TimePoint::ZERO, Nanos::from_nanos(200));
        assert_eq!(d.quiescent_at(), TimePoint::from_nanos(300));
    }
}
