//! Shared harness for the figure-regeneration binaries.
//!
//! Each `fig*` binary regenerates one figure of the paper's evaluation
//! (§5, Figures 2 and 7–12) on the simulated platform and prints the same
//! rows/series the paper plots, alongside the paper's reported values where
//! the paper states them. Run them all with `cargo run -p gmac-bench --bin
//! figures` (results land in `results/`).

#![warn(missing_docs)]

pub mod contention;
pub mod evict;
pub mod hotpath;
pub mod overlap;
pub mod race;
pub mod service;

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple fixed-width text table (markdown-compatible).
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Writes figure output both to stdout and to `results/<name>.txt`.
pub fn emit(name: &str, body: &str) {
    println!("{body}");
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        if let Ok(mut f) = fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = f.write_all(body.as_bytes());
        }
    }
}

/// Formats a ratio like the paper's slow-down axis.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats seconds with three significant figures.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats a byte count with binary units (re-export of hetsim's helper).
pub fn fmt_bytes(b: u64) -> String {
    hetsim::stats::fmt_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2.50x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| name"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("| longer | 2.50x |"));
        // All lines same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(65.178), "65.18x");
        assert_eq!(fmt_secs(1.5), "1.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(0.000002), "2.0 us");
    }
}
