//! Shared harness for the transfer-overlap ablation: the same streaming
//! scenarios timed in **wall-clock** nanoseconds with
//! [`GmacConfig::async_dma`] on (background per-device DMA workers land the
//! bytes) vs. off (inline execution on the issuing thread, under the shard
//! lock). Virtual-time results are byte-identical between modes — the
//! `async_dma` integration test enforces that across the workload suite —
//! so the only thing measured here is how much of the transfer cost the
//! engine hides behind CPU work.
//!
//! With at least two host cores, the rolling wall-clock approaches
//! max(compute, transfer) instead of compute + transfer: the write-stream
//! scenario leaves roughly one of its three per-byte copies to the worker,
//! so the expected on/off ratio is ~0.67.
//!
//! Used by the `overlap` binary (which writes `results/BENCH_overlap.json`).

use gmac::{Gmac, GmacConfig, Protocol};
use hetsim::{DeviceId, Platform};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::stream::StreamPipeline;
use workloads::{run_variant_with, Variant};

/// Problem sizes for one run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Bytes written (and flushed) per write-stream pass.
    pub chunk_bytes: usize,
    /// Write-stream passes.
    pub passes: usize,
    /// Elements per streaming-pipeline chunk.
    pub pipe_chunk: usize,
    /// Streaming-pipeline chunks.
    pub pipe_chunks: usize,
}

impl Scale {
    /// Full measurement scale.
    pub fn full() -> Self {
        Scale {
            chunk_bytes: 8 << 20,
            passes: 24,
            pipe_chunk: 2 * 1024 * 1024,
            pipe_chunks: 24,
        }
    }

    /// CI smoke scale (`--quick`).
    pub fn quick() -> Self {
        Scale {
            chunk_bytes: 2 << 20,
            passes: 6,
            pipe_chunk: 512 * 1024,
            pipe_chunks: 8,
        }
    }
}

/// Wall-clock result of one scenario in one mode.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Total wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Output digest (must match across modes).
    pub digest: u64,
    /// Jobs the engine retired between joins (0 in inline mode).
    pub jobs_overlapped: u64,
}

/// One scenario measured in both modes.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioResult {
    /// Scenario name (`write_stream`, `stream_pipeline`).
    pub name: &'static str,
    /// Background engine on.
    pub async_on: Sample,
    /// Inline ablation.
    pub async_off: Sample,
}

impl ScenarioResult {
    /// Wall-clock ratio on/off: < 1 means the engine hid transfer time.
    pub fn ratio(&self) -> f64 {
        self.async_on.wall_ns as f64 / (self.async_off.wall_ns as f64).max(f64::MIN_POSITIVE)
    }
}

/// Write-streaming: the CPU repeatedly rewrites a rolling-protocol object,
/// whose eager evictions queue flush jobs as the write sweeps forward. Per
/// flushed byte the inline mode pays three copies on the issuing thread
/// (host write, plan gather, device landing); the engine moves the landing
/// to a worker. The final release + join is inside the timed region — a
/// real pipeline pays it too.
pub fn write_stream(async_dma: bool, scale: Scale) -> Sample {
    let g = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(64 * 1024)
            .async_dma(async_dma),
    );
    let s = g.session();
    let p = s.alloc(scale.chunk_bytes as u64).expect("alloc");
    let data = vec![0xA5u8; scale.chunk_bytes];
    // Warm pass: resolve first-touch faults outside the measurement.
    s.store_slice::<u8>(p, &data).expect("warm store");
    let start = Instant::now();
    for _ in 0..scale.passes {
        s.store_slice::<u8>(p, &data).expect("store");
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
            .expect("release");
    }
    s.with_parts(|rt, _, _| rt.join_dma(DeviceId(0)))
        .expect("join");
    let wall_ns = start.elapsed().as_nanos() as u64;
    // Digest the bytes that actually landed on the device.
    let back = s.load_slice::<u8>(p, scale.chunk_bytes).expect("read back");
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for b in back {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x100_0000_01b3);
    }
    let jobs_overlapped = g.counters().jobs_overlapped;
    Sample {
        wall_ns,
        digest,
        jobs_overlapped,
    }
}

/// The end-to-end double-buffered streaming pipeline (the workload the
/// engine was built for), timed wall-clock through `run_variant_with`.
pub fn stream_pipeline(async_dma: bool, scale: Scale) -> Sample {
    let w = StreamPipeline {
        chunk: scale.pipe_chunk,
        chunks: scale.pipe_chunks,
    };
    let cfg = GmacConfig::default().async_dma(async_dma);
    let start = Instant::now();
    let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("pipeline run");
    let wall_ns = start.elapsed().as_nanos() as u64;
    Sample {
        wall_ns,
        digest: r.digest,
        jobs_overlapped: r.counters.map_or(0, |c| c.jobs_overlapped),
    }
}

/// Best-of-`rounds`: lowest wall time (minimum-noise estimator).
pub fn best_of(rounds: usize, mut f: impl FnMut() -> Sample) -> Sample {
    (0..rounds.max(1))
        .map(|_| f())
        .min_by_key(|s| s.wall_ns)
        .expect("at least one round")
}

/// Runs both scenarios in both modes (best of three rounds each) and
/// asserts the modes produced identical output bytes.
pub fn run_all(scale: Scale) -> Vec<ScenarioResult> {
    let mut results = Vec::new();
    for (name, f) in [
        ("write_stream", write_stream as fn(bool, Scale) -> Sample),
        (
            "stream_pipeline",
            stream_pipeline as fn(bool, Scale) -> Sample,
        ),
    ] {
        let async_on = best_of(3, || f(true, scale));
        let async_off = best_of(3, || f(false, scale));
        assert_eq!(
            async_on.digest, async_off.digest,
            "{name}: async ablation changed the output bytes"
        );
        results.push(ScenarioResult {
            name,
            async_on,
            async_off,
        });
    }
    results
}

/// Renders the results as the `BENCH_overlap.json` document (hand-rolled:
/// the container has no serde). `scale` labels the measurement and `cores`
/// records the parallelism the ratio was measured under — on a single core
/// no overlap is physically possible and the ratio hovers near 1.
pub fn to_json(scale: &str, cores: usize, results: &[ScenarioResult]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"overlap\",\n  \"scale\": \"{scale}\",\n  \"cores\": {cores},\n  \"unit\": \"wall_ns\",\n  \"scenarios\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"async_on_wall_ns\": {}, \"async_off_wall_ns\": {}, \"ratio\": {:.3}, \"jobs_overlapped\": {}}}",
            r.name,
            r.async_on.wall_ns,
            r.async_off.wall_ns,
            r.ratio(),
            r.async_on.jobs_overlapped,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
