//! Service-layer load bench: M client sessions (M ≫ devices) push jobs
//! through the queue → placer → device-worker pipeline and measure
//! **wall-clock** throughput (jobs/sec) and end-to-end latency (submit to
//! ticket fulfilment, p50/p99) at 100 / 1,000 / 10,000 concurrent sessions.
//!
//! Virtual-time results are byte-identical with the service on, off, or
//! absent — the core crate's `service` integration test enforces that — so
//! the only thing measured here is how the front-end holds up under fan-in:
//! fair-queue arbitration cost, admission back-pressure (clients retry on
//! [`gmac::GmacError::Admission`] using the machine-readable hint), and the
//! single-worker-per-device serialisation.
//!
//! Used by the `service` binary (which writes `results/BENCH_service.json`).

use gmac::{Gmac, GmacConfig, GmacError, Param, Priority};
use hetsim::{LaunchDims, Platform};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Problem sizes for one sweep.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Concurrent client sessions per load point.
    pub session_counts: &'static [usize],
    /// Jobs each session submits (serially: submit, wait, repeat).
    pub jobs_per_session: usize,
    /// Service queue depth (small enough that the 10k point actually
    /// exercises admission back-pressure).
    pub queue_depth: usize,
}

impl Scale {
    /// Full measurement scale (the ISSUE's 100 / 1,000 / 10,000 points).
    pub fn full() -> Self {
        Scale {
            session_counts: &[100, 1_000, 10_000],
            jobs_per_session: 4,
            queue_depth: 4_096,
        }
    }

    /// CI smoke scale (`--quick`).
    pub fn quick() -> Self {
        Scale {
            session_counts: &[100, 1_000],
            jobs_per_session: 2,
            queue_depth: 512,
        }
    }
}

/// Wall-clock result of one load point.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Jobs completed (always `sessions * jobs_per_session`).
    pub jobs: u64,
    /// Wall-clock nanoseconds from barrier release to last join.
    pub wall_ns: u64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Median end-to-end latency (first submit attempt → ticket result).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency.
    pub p99_ns: u64,
    /// Admission rejections absorbed by client retry (back-pressure events,
    /// not failures — every job eventually completed).
    pub rejections: u64,
}

/// `p` in [0, 1] over a sorted slice (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one load point: `sessions` client threads (64 KiB stacks, so the
/// 10k point stays cheap) each submit-and-wait `jobs_per_session` small
/// kernel jobs, retrying on admission rejection after the hinted delay.
pub fn run_point(sessions: usize, scale: Scale) -> LoadPoint {
    let g = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().service_queue_depth(scale.queue_depth),
    );
    g.with_platform(|p| p.register_kernel(Arc::new(gmac::testutil::NopKernel)));
    let svc = g.service();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let client = svc.client(Priority::ALL[i % Priority::ALL.len()]);
            let barrier = Arc::clone(&barrier);
            let jobs = scale.jobs_per_session;
            std::thread::Builder::new()
                .stack_size(64 * 1024)
                .spawn(move || {
                    barrier.wait();
                    let mut latencies = Vec::with_capacity(jobs);
                    let mut rejections = 0u64;
                    for j in 0..jobs as u64 {
                        let t0 = Instant::now();
                        let mut attempt = 0u32;
                        let ticket = loop {
                            match client.submit(4096, move |s| {
                                let b = s.alloc(4096)?;
                                s.store::<u64>(b, j)?;
                                s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(b)])?;
                                s.sync()?;
                                let v = s.load::<u64>(b)?;
                                s.free(b)?;
                                Ok(v)
                            }) {
                                Ok(t) => break t,
                                Err(GmacError::Admission { retry_after, .. }) => {
                                    // Respect the hint (it scales with the
                                    // backlog) and back off exponentially on
                                    // consecutive rejections: at the 10k
                                    // point far more clients than queue
                                    // slots exist, and without backoff their
                                    // wakeups alone starve the worker.
                                    rejections += 1;
                                    let ns = (retry_after.as_nanos().max(100_000)
                                        << attempt.min(4))
                                    .min(2_000_000_000);
                                    attempt += 1;
                                    std::thread::sleep(Duration::from_nanos(ns));
                                }
                                Err(other) => panic!("submit failed: {other}"),
                            }
                        };
                        let v = ticket.wait().expect("service job");
                        assert_eq!(v, j);
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                    (latencies, rejections)
                })
                .expect("spawn client thread")
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(sessions * scale.jobs_per_session);
    let mut rejections = 0u64;
    for h in handles {
        let (l, r) = h.join().expect("client thread");
        latencies.extend(l);
        rejections += r;
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    drop(svc);
    latencies.sort_unstable();
    let jobs = latencies.len() as u64;
    LoadPoint {
        sessions,
        jobs,
        wall_ns,
        jobs_per_sec: jobs as f64 / (wall_ns as f64 / 1e9).max(f64::MIN_POSITIVE),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        rejections,
    }
}

/// Runs the whole sweep.
pub fn run_all(scale: Scale) -> Vec<LoadPoint> {
    scale
        .session_counts
        .iter()
        .map(|&n| run_point(n, scale))
        .collect()
}

/// Renders the sweep as the `BENCH_service.json` document (hand-rolled: the
/// container has no serde). `cores` records the parallelism the numbers
/// were measured under — on a single core the placer, worker and clients
/// all timeshare one CPU, so absolute throughput is not comparable across
/// machines without it.
pub fn to_json(scale: &str, cores: usize, points: &[LoadPoint]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"service\",\n  \"scale\": \"{scale}\",\n  \"cores\": {cores},\n  \"unit\": \"wall_ns\",\n  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"sessions\": {}, \"jobs\": {}, \"wall_ns\": {}, \"jobs_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"rejections\": {}}}",
            p.sessions, p.jobs, p.wall_ns, p.jobs_per_sec, p.p50_ns, p.p99_ns, p.rejections,
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn json_shape_holds() {
        let p = LoadPoint {
            sessions: 100,
            jobs: 400,
            wall_ns: 2_000_000,
            jobs_per_sec: 200_000.0,
            p50_ns: 4_000,
            p99_ns: 90_000,
            rejections: 3,
        };
        let j = to_json("quick", 8, &[p]);
        assert!(j.contains("\"bench\": \"service\""));
        assert!(j.contains("\"cores\": 8"));
        assert!(j.contains("\"sessions\": 100"));
        assert!(j.contains("\"p99_ns\": 90000"));
        assert!(j.contains("\"rejections\": 3"));
    }
}
