//! Oversubscription bench for device-memory-as-a-cache eviction
//! ([`GmacConfig::evict`]): a working set several times larger than device
//! memory cycles through kernel calls, forcing the shard to evict cold
//! objects to host (and optionally spill them on to the disk tier) and
//! re-fetch them on the next call that needs them.
//!
//! The headline check is **correctness under pressure**: every mode below —
//! oversubscribed LRU, oversubscribed clock, oversubscribed with a host
//! budget small enough to spill, and an un-oversubscribed reference — must
//! produce byte-identical output digests. On top of that the
//! un-oversubscribed reference must be identical *in virtual time* with
//! eviction on and off, proving the machinery is free until the device
//! actually runs out (the standard ablation discipline of this repo).
//! What the oversubscribed modes then measure is the *price* of pretending
//! the device is bigger than it is: extra D2H/H2D traffic and file I/O,
//! reported as a virtual-time slowdown over the reference.
//!
//! Used by the `evict` binary (which writes `results/BENCH_evict.json`).

use gmac::{EvictPolicy, Gmac, GmacConfig, Param};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceMemory, GpuSpec, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
    DEFAULT_DEVICE_BASE,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Problem sizes for one run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Device memory of the oversubscribed platform.
    pub device_mem: u64,
    /// Shared objects in the working set.
    pub objects: usize,
    /// Bytes per object.
    pub object_bytes: u64,
    /// Full sweeps of the working set (one kernel call per object each).
    pub rounds: usize,
    /// Best-of repeats for the wall-clock numbers.
    pub repeats: usize,
}

impl Scale {
    /// Full measurement scale: 320 MiB working set on a 64 MiB device
    /// (5x oversubscription).
    pub fn full() -> Self {
        Scale {
            device_mem: 64 << 20,
            objects: 20,
            object_bytes: 16 << 20,
            rounds: 3,
            repeats: 3,
        }
    }

    /// CI smoke scale (`--quick`): 64 MiB working set on a 16 MiB device
    /// (4x oversubscription).
    pub fn quick() -> Self {
        Scale {
            device_mem: 16 << 20,
            objects: 8,
            object_bytes: 8 << 20,
            rounds: 2,
            repeats: 1,
        }
    }

    /// Total working-set bytes.
    pub fn working_set(&self) -> u64 {
        self.objects as u64 * self.object_bytes
    }

    /// Working set over device memory.
    pub fn oversubscription(&self) -> f64 {
        self.working_set() as f64 / self.device_mem as f64
    }
}

/// One configuration under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Working set ≫ device memory, LRU victims (the headline).
    Oversub,
    /// Same pressure, clock/second-chance victims.
    OversubClock,
    /// Same pressure plus a host budget of half the working set, so cold
    /// evicted images spill to the disk tier and are read back.
    OversubSpill,
    /// Device big enough for the whole working set: nothing ever evicts.
    Reference,
    /// Reference capacity with eviction compiled out
    /// ([`GmacConfig::evict`] off) — must match [`Mode::Reference`] in
    /// virtual time exactly.
    ReferenceNoEvict,
}

impl Mode {
    /// All modes, headline first.
    pub const ALL: [Mode; 5] = [
        Mode::Oversub,
        Mode::OversubClock,
        Mode::OversubSpill,
        Mode::Reference,
        Mode::ReferenceNoEvict,
    ];

    /// JSON/row label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Oversub => "oversub_lru",
            Mode::OversubClock => "oversub_clock",
            Mode::OversubSpill => "oversub_spill",
            Mode::Reference => "reference",
            Mode::ReferenceNoEvict => "reference_no_evict",
        }
    }

    fn device_mem(self, scale: Scale) -> u64 {
        match self {
            Mode::Oversub | Mode::OversubClock | Mode::OversubSpill => scale.device_mem,
            // Working set plus slack: nothing ever needs evicting.
            Mode::Reference | Mode::ReferenceNoEvict => scale.working_set() * 2,
        }
    }

    fn config(self, scale: Scale) -> GmacConfig {
        let base = GmacConfig::default();
        match self {
            Mode::Oversub | Mode::Reference => base,
            Mode::OversubClock => base.evict_policy(EvictPolicy::Clock),
            Mode::OversubSpill => base.host_capacity(scale.working_set() / 2),
            Mode::ReferenceNoEvict => base.evict(false),
        }
    }
}

/// Result of one mode.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Wall-clock nanoseconds for the whole workload.
    pub wall_ns: u64,
    /// Virtual nanoseconds on the simulated platform.
    pub virtual_ns: u64,
    /// FNV digest of every object's final bytes (must match across modes).
    pub digest: u64,
    /// Objects evicted device→host.
    pub evictions: u64,
    /// Evicted objects re-homed on a later call.
    pub refetches: u64,
    /// Bytes released by eviction.
    pub evicted_bytes: u64,
    /// Cold host images spilled to the disk tier.
    pub disk_spills: u64,
}

#[derive(Debug)]
struct Inc;

impl Kernel for Inc {
    fn name(&self) -> &str {
        "inc"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x += 1.0;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

/// Runs the workload once in one mode: allocate the whole working set,
/// seed a per-object pattern, sweep it `rounds` times with an increment
/// kernel (each call re-homes its object, evicting colder ones on the
/// small platform), then digest every object's final bytes from the host.
pub fn run_mode(mode: Mode, scale: Scale) -> Sample {
    let platform = Platform::builder()
        .clear_devices()
        .add_device(GpuSpec::g280(), mode.device_mem(scale), DEFAULT_DEVICE_BASE)
        .build();
    platform.register_kernel(Arc::new(Inc));
    let g = Gmac::new(platform, mode.config(scale));
    let s = g.session();
    let elems = (scale.object_bytes / 4) as usize;

    let ptrs: Vec<_> = (0..scale.objects)
        .map(|i| {
            let p = s.alloc(scale.object_bytes).expect("alloc");
            let data: Vec<f32> = (0..elems).map(|e| ((e + i) % 251) as f32).collect();
            s.store_slice(p, &data).expect("seed");
            p
        })
        .collect();

    let start = Instant::now();
    for _ in 0..scale.rounds {
        for &p in &ptrs {
            s.call(
                "inc",
                LaunchDims::for_elements(elems as u64, 256),
                &[Param::Shared(p), Param::U64(elems as u64)],
            )
            .expect("call");
            s.sync().expect("sync");
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (i, &p) in ptrs.iter().enumerate() {
        let back = s.load_slice::<f32>(p, elems).expect("read back");
        for (e, v) in back.iter().enumerate() {
            let expect = ((e + i) % 251) as f32 + scale.rounds as f32;
            assert_eq!(*v, expect, "object {i} elem {e} corrupted");
            for b in v.to_bits().to_le_bytes() {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let c = g.counters();
    Sample {
        wall_ns,
        virtual_ns: g.report().elapsed.as_nanos(),
        digest,
        evictions: c.evictions,
        refetches: c.refetches,
        evicted_bytes: c.evicted_bytes,
        disk_spills: c.disk_spills,
    }
}

/// Best-of-`rounds`: lowest wall time; digests must agree between repeats.
pub fn best_of(rounds: usize, mut f: impl FnMut() -> Sample) -> Sample {
    let samples: Vec<Sample> = (0..rounds.max(1)).map(|_| f()).collect();
    assert!(
        samples.windows(2).all(|w| w[0].digest == w[1].digest),
        "repeats disagree on output bytes"
    );
    *samples
        .iter()
        .min_by_key(|s| s.wall_ns)
        .expect("at least one round")
}

/// Runs every mode and enforces the cross-mode invariants: all digests
/// identical; the oversubscribed modes actually evicted (and the spill mode
/// actually spilled); the reference never evicted; and eviction on vs. off
/// is virtual-time identical when capacity suffices.
pub fn run_all(scale: Scale) -> Vec<(Mode, Sample)> {
    let results: Vec<(Mode, Sample)> = Mode::ALL
        .iter()
        .map(|&m| (m, best_of(scale.repeats, || run_mode(m, scale))))
        .collect();
    let reference = results
        .iter()
        .find(|(m, _)| *m == Mode::Reference)
        .expect("reference mode ran")
        .1;
    for (mode, s) in &results {
        assert_eq!(
            s.digest,
            reference.digest,
            "{}: oversubscription changed the output bytes",
            mode.label()
        );
        match mode {
            Mode::Oversub | Mode::OversubClock | Mode::OversubSpill => {
                assert!(s.evictions > 0, "{}: no pressure exercised", mode.label());
                assert!(s.refetches > 0, "{}: nothing came back", mode.label());
            }
            Mode::Reference | Mode::ReferenceNoEvict => {
                assert_eq!(s.evictions, 0, "reference must not evict");
            }
        }
        if *mode == Mode::OversubSpill {
            assert!(s.disk_spills > 0, "spill mode never hit the disk tier");
        }
        if *mode == Mode::ReferenceNoEvict {
            assert_eq!(
                s.virtual_ns, reference.virtual_ns,
                "eviction machinery must be virtual-time-free until OOM"
            );
        }
    }
    results
}

/// Renders the results as the `BENCH_evict.json` document (hand-rolled: the
/// container has no serde). `scale` labels the measurement; the working-set
/// and device sizes pin the oversubscription factor the numbers were
/// produced under, and `slowdown` is each mode's virtual time over the
/// un-oversubscribed reference.
pub fn to_json(scale_name: &str, cores: usize, scale: Scale, results: &[(Mode, Sample)]) -> String {
    let reference_ns = results
        .iter()
        .find(|(m, _)| *m == Mode::Reference)
        .map_or(1, |(_, s)| s.virtual_ns.max(1));
    let mut out = format!(
        "{{\n  \"bench\": \"evict\",\n  \"scale\": \"{scale_name}\",\n  \"cores\": {cores},\n  \
         \"unit\": \"virtual_ns\",\n  \"working_set_bytes\": {},\n  \"device_mem_bytes\": {},\n  \
         \"oversubscription\": {:.2},\n  \"modes\": [\n",
        scale.working_set(),
        scale.device_mem,
        scale.oversubscription(),
    );
    for (i, (mode, s)) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"wall_ns\": {}, \"virtual_ns\": {}, \"slowdown\": {:.3}, \
             \"evictions\": {}, \"refetches\": {}, \"evicted_bytes\": {}, \"disk_spills\": {}, \
             \"digest\": \"{:#018x}\"}}",
            mode.label(),
            s.wall_ns,
            s.virtual_ns,
            s.virtual_ns as f64 / reference_ns as f64,
            s.evictions,
            s.refetches,
            s.evicted_bytes,
            s.disk_spills,
            s.digest,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_oversubscribed() {
        assert!(Scale::full().oversubscription() >= 4.0);
        assert!(Scale::quick().oversubscription() >= 4.0);
    }

    #[test]
    fn json_shape_holds() {
        let s = Sample {
            wall_ns: 100,
            virtual_ns: 2_000,
            digest: 0xDEAD,
            evictions: 7,
            refetches: 6,
            evicted_bytes: 1 << 20,
            disk_spills: 2,
        };
        let j = to_json("quick", 8, Scale::quick(), &[(Mode::Oversub, s)]);
        assert!(j.contains("\"bench\": \"evict\""));
        assert!(j.contains("\"oversubscription\": 4.00"));
        assert!(j.contains("\"name\": \"oversub_lru\""));
        assert!(j.contains("\"evictions\": 7"));
        assert!(j.contains("\"disk_spills\": 2"));
        assert!(j.contains("\"digest\": \"0x000000000000dead\""));
    }
}
