//! Oversubscription sweep for device-memory-as-a-cache eviction: a working
//! set 4–5x device memory cycles through kernel calls under LRU and clock
//! victim selection, with and without a host budget small enough to spill
//! to the disk tier, against an un-oversubscribed reference.
//!
//! Every mode must produce byte-identical output digests, and the reference
//! must be virtual-time identical with eviction on and off (the machinery
//! is free until the device actually runs out) — `run_all` asserts both.
//! The recorded numbers are the *price* of oversubscription: virtual-time
//! slowdown over the reference, evictions, re-fetches and disk spills.
//! Results land in `results/BENCH_evict.json`.
//!
//! Usage: `evict [--quick]`

use gmac_bench::evict::{run_all, to_json, Scale};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "eviction/oversubscription sweep ({} scale): {} working set on a {} device ({:.1}x)\n",
        if quick { "quick" } else { "full" },
        gmac_bench::fmt_bytes(scale.working_set()),
        gmac_bench::fmt_bytes(scale.device_mem),
        scale.oversubscription(),
    );

    let results = run_all(scale);
    let reference_ns = results
        .iter()
        .find(|(m, _)| *m == gmac_bench::evict::Mode::Reference)
        .map_or(1, |(_, s)| s.virtual_ns.max(1));

    let mut table = TextTable::new([
        "mode",
        "virtual time",
        "slowdown",
        "evictions",
        "refetches",
        "evicted",
        "spills",
    ]);
    for (mode, s) in &results {
        table.row([
            mode.label().to_string(),
            gmac_bench::fmt_secs(s.virtual_ns as f64 / 1e9),
            gmac_bench::fmt_ratio(s.virtual_ns as f64 / reference_ns as f64),
            s.evictions.to_string(),
            s.refetches.to_string(),
            gmac_bench::fmt_bytes(s.evicted_bytes),
            s.disk_spills.to_string(),
        ]);
    }
    gmac_bench::emit("evict", &table.render());
    println!("all modes digest-identical; reference evict on/off virtual-time identical");

    let json = to_json(if quick { "quick" } else { "full" }, cores, scale, &results);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_evict.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_evict.json");
        }
    }
}
