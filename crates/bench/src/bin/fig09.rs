//! Figure 9 — 3D-Stencil execution time for different volume sizes under
//! lazy-update and rolling-update with 4 KB / 256 KB / 1 MB / 32 MB blocks.
//!
//! Paper shape: rolling-update increasingly beats lazy-update as the volume
//! grows (source introduction touches one block, not the whole volume);
//! very large blocks (32 MB) are worse than 256 KB / 1 MB at small volumes
//! but the gap narrows as disk dumps (which like big transfers) dominate.

use gmac::{GmacConfig, Protocol};
use gmac_bench::{emit, fmt_secs, TextTable};
use workloads::stencil3d::Stencil3d;
use workloads::{run_variant_with, Variant};

fn main() {
    // The paper sweeps 64³..384³; 320³ keeps the largest case inside the
    // simulated G280's 1 GiB with headroom for the double buffer.
    let volumes = [64usize, 128, 192, 256, 320];
    let block_sizes: [(u64, &str); 4] = [
        (4 << 10, "4KB"),
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (32 << 20, "32MB"),
    ];
    let mut body = String::new();
    body.push_str("Figure 9 — 3D-Stencil execution time vs volume size\n\n");
    let mut header = vec!["volume".to_string(), "GMAC Lazy".to_string()];
    header.extend(block_sizes.iter().map(|(_, l)| format!("Rolling ({l})")));
    let mut t = TextTable::new(header);
    for n in volumes {
        eprintln!("[fig09] volume {n}^3 ...");
        let w = Stencil3d::with_volume(n);
        let lazy = run_variant_with(
            &w,
            Variant::Gmac(Protocol::Lazy),
            GmacConfig::default().protocol(Protocol::Lazy),
        )
        .expect("lazy run");
        let mut row = vec![format!("{n}x{n}x{n}"), fmt_secs(lazy.elapsed.as_secs_f64())];
        for (bs, _) in block_sizes {
            let r = run_variant_with(
                &w,
                Variant::Gmac(Protocol::Rolling),
                GmacConfig::default().block_size(bs),
            )
            .expect("rolling run");
            assert_eq!(r.digest, lazy.digest, "stencil output mismatch at {n}");
            row.push(fmt_secs(r.elapsed.as_secs_f64()));
        }
        t.row(row);
    }
    body.push_str(&t.render());
    body.push_str(
        "\nPaper shape: rolling-update beats lazy-update and the advantage grows \
         with the volume; mid-size blocks (256KB/1MB) win at small volumes, the \
         32MB handicap shrinks as disk-dump transfers dominate.\n",
    );
    emit("fig09", &body);
}
