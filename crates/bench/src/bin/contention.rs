//! Lock-contention ablation: N OS threads × N accelerators, vecadd rounds.
//!
//! Measures **wall-clock** time (not virtual time) for the same fixed
//! workload under the two runtime lock modes:
//!
//! * `sharded` — the default per-device shard locks: each thread's
//!   allocations, transfers and kernel executions take only its own
//!   device's locks, so threads genuinely overlap;
//! * `global`  — `GmacConfig::sharding(false)`: every operation additionally
//!   serialises on one process-wide mutex, reproducing the pre-shard
//!   `Mutex<State>` runtime.
//!
//! Both modes run identical code paths, so the per-device output digests
//! must match exactly; only wall-clock concurrency differs. The
//! `contention_ablation` integration test asserts the ≥1.5× speedup and
//! digest equality; this binary prints the table.
//!
//! Usage: `contention [--quick] [devices] [elements] [reps]`

use gmac_bench::contention::run_mode;
use gmac_bench::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let devices = nums.first().copied().unwrap_or(2);
    let n = nums
        .get(1)
        .copied()
        .unwrap_or(if quick { 256 * 1024 } else { 1 << 20 });
    let reps = nums.get(2).copied().unwrap_or(if quick { 2 } else { 4 });

    println!(
        "contention ablation: {devices} threads x {devices} devices, vecadd n={n}, reps={reps}"
    );
    println!("(wall-clock; output digests are identical between modes)\n");

    // Warm-up (allocator, page frames, thread spawn) outside the measurement.
    run_mode(true, devices, n.min(64 * 1024), 1);

    let sharded = run_mode(true, devices, n, reps);
    let global = run_mode(false, devices, n, reps);
    assert_eq!(
        sharded.digests, global.digests,
        "lock mode must never change results"
    );

    let mut table = TextTable::new(["mode", "wall-clock", "digests"]);
    table.row([
        "sharded".to_string(),
        gmac_bench::fmt_secs(sharded.wall_secs),
        format!("{:016x?}", sharded.digests),
    ]);
    table.row([
        "global".to_string(),
        gmac_bench::fmt_secs(global.wall_secs),
        format!("{:016x?}", global.digests),
    ]);
    gmac_bench::emit("contention", &table.render());

    println!(
        "speedup (global/sharded): {:.2}x on {} available cores",
        global.wall_secs / sharded.wall_secs,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
