//! Figure 8 — data transferred by lazy- and rolling-update, normalised to
//! batch-update, split host-to-accelerator vs accelerator-to-host.
//!
//! Paper shape: both protocols move a small fraction of batch-update's
//! traffic (the bars sit well below 0.5 for most benchmarks), with
//! rolling-update's fine-grained blocks trimming a little more than lazy on
//! benchmarks with scattered CPU reads (e.g. mri-q).

use gmac::Protocol;
use gmac_bench::{emit, fmt_bytes, TextTable};
use workloads::{parboil_suite, run_variant, Variant};

fn main() {
    let mut body = String::new();
    body.push_str("Figure 8 — transferred data normalised to batch-update\n\n");
    let mut t = TextTable::new([
        "benchmark",
        "batch total",
        "lazy H2D",
        "lazy D2H",
        "rolling H2D",
        "rolling D2H",
    ]);
    for w in parboil_suite() {
        eprintln!("[fig08] running {} ...", w.name());
        let batch = run_variant(w.as_ref(), Variant::Gmac(Protocol::Batch)).expect("batch");
        let lazy = run_variant(w.as_ref(), Variant::Gmac(Protocol::Lazy)).expect("lazy");
        let rolling = run_variant(w.as_ref(), Variant::Gmac(Protocol::Rolling)).expect("rolling");
        let (bh, bd) = (
            batch.transfers.h2d_bytes.max(1),
            batch.transfers.d2h_bytes.max(1),
        );
        t.row([
            w.name().to_string(),
            fmt_bytes(batch.transfers.total_bytes()),
            format!("{:.3}", lazy.transfers.h2d_bytes as f64 / bh as f64),
            format!("{:.3}", lazy.transfers.d2h_bytes as f64 / bd as f64),
            format!("{:.3}", rolling.transfers.h2d_bytes as f64 / bh as f64),
            format!("{:.3}", rolling.transfers.d2h_bytes as f64 / bd as f64),
        ]);
    }
    body.push_str(&t.render());
    body.push_str(
        "\nValues are fractions of batch-update's traffic in the same direction \
         (paper Figure 8 plots exactly these bars; lower is better).\n",
    );
    emit("fig08", &body);
}
