//! Transfer-overlap ablation: wall-clock time for the streaming scenarios
//! with the background DMA engine ([`gmac::GmacConfig::async_dma`]) on vs.
//! off.
//!
//! Virtual-time results are byte-identical between modes (asserted by the
//! `async_dma` integration test across the workload suite); this binary
//! measures the wall-clock overlap the engine buys and records it in
//! `results/BENCH_overlap.json`. On a machine with >= 2 cores the rolling
//! wall-clock approaches max(compute, transfer); on a single core no
//! overlap is physically possible and the ratio hovers near 1 (the JSON
//! records the core count so readers can tell the difference).
//!
//! Usage: `overlap [--quick]`

use gmac_bench::overlap::{run_all, to_json, Scale};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "transfer-overlap ablation ({} scale, {cores} cores): wall-clock, async_dma on vs off\n",
        if quick { "quick" } else { "full" }
    );

    // Warm-up run (allocator, worker spawn, code paths) outside the numbers.
    run_all(Scale::quick());
    let results = run_all(scale);

    let mut table = TextTable::new(["scenario", "async on", "async off", "ratio", "overlapped"]);
    for r in &results {
        table.row([
            r.name.to_string(),
            gmac_bench::fmt_secs(r.async_on.wall_ns as f64 / 1e9),
            gmac_bench::fmt_secs(r.async_off.wall_ns as f64 / 1e9),
            gmac_bench::fmt_ratio(r.ratio()),
            r.async_on.jobs_overlapped.to_string(),
        ]);
    }
    gmac_bench::emit("overlap", &table.render());
    if cores < 2 {
        println!("note: single core — overlap cannot manifest in wall-clock time here");
    }

    let json = to_json(if quick { "quick" } else { "full" }, cores, &results);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_overlap.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_overlap.json");
        }
    }
}
