//! Section 5 porting claim — "the porting process did not involve adding any
//! source code lines ... the total number of lines of code decreased in all
//! benchmarks."
//!
//! Counts the source lines of the CUDA-style (`run_cuda`) and GMAC-style
//! (`run_gmac`) variant of every workload in this repository and prints the
//! delta. Both variants share kernels and datasets, so the difference is the
//! programming-model boilerplate (double allocation, explicit transfers).

use gmac_bench::{emit, TextTable};

/// Extracts the body line count of `fn_name` inside `source` by brace
/// matching from the function's opening brace.
fn fn_lines(source: &str, fn_name: &str) -> usize {
    let needle = format!("fn {fn_name}");
    let start = source
        .find(&needle)
        .unwrap_or_else(|| panic!("{fn_name} not found"));
    let brace = source[start..].find('{').expect("opening brace") + start;
    let mut depth = 0usize;
    let mut end = brace;
    for (i, ch) in source[brace..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = brace + i;
                    break;
                }
            }
            _ => {}
        }
    }
    source[brace..=end]
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn main() {
    let sources: &[(&str, &str)] = &[
        ("cp", include_str!("../../../workloads/src/cp.rs")),
        ("mri-fhd", include_str!("../../../workloads/src/mrifhd.rs")),
        ("mri-q", include_str!("../../../workloads/src/mriq.rs")),
        ("pns", include_str!("../../../workloads/src/pns.rs")),
        ("rpes", include_str!("../../../workloads/src/rpes.rs")),
        ("sad", include_str!("../../../workloads/src/sad.rs")),
        ("tpacf", include_str!("../../../workloads/src/tpacf.rs")),
        ("vecadd", include_str!("../../../workloads/src/vecadd.rs")),
        (
            "stencil3d",
            include_str!("../../../workloads/src/stencil3d.rs"),
        ),
    ];
    let mut body = String::new();
    body.push_str("Porting effort — lines of application code per variant\n\n");
    let mut t = TextTable::new(["benchmark", "CUDA-style", "GMAC-style", "delta"]);
    let mut all_decreased = true;
    for (name, src) in sources {
        let cuda = fn_lines(src, "run_cuda");
        let gmac = fn_lines(src, "run_gmac");
        if gmac >= cuda {
            all_decreased = false;
        }
        t.row([
            name.to_string(),
            cuda.to_string(),
            gmac.to_string(),
            format!("{:+}", gmac as i64 - cuda as i64),
        ]);
    }
    body.push_str(&t.render());
    body.push_str(&format!(
        "\nlines decreased in all benchmarks: {all_decreased} — paper: \"After being \
         ported to GMAC, the total number of lines of code decreased in all \
         benchmarks.\"\n"
    ));
    emit("porting", &body);
}
