//! Figure 2 — estimated bandwidth requirements for NPB kernels vs IPC,
//! against the PCIe / QPI / HyperTransport / GTX295-memory lines.
//!
//! Prints the required bandwidth per benchmark at representative IPC values
//! and the maximum IPC each interconnect can sustain (the paper's headline:
//! PCIe caps bt at IPC ≈ 50 and ua at IPC ≈ 5).

use gmac_bench::{emit, TextTable};
use workloads::npb::{figure2_links, NPB_KERNELS};

fn main() {
    let mut body = String::new();
    body.push_str("Figure 2 — bandwidth required by NPB kernels (800 MHz clock)\n\n");

    let mut t = TextTable::new(["benchmark", "IPC=1", "IPC=5", "IPC=20", "IPC=50", "IPC=100"]);
    for k in NPB_KERNELS {
        t.row([
            k.name.to_string(),
            k.required_bandwidth(1.0).to_string(),
            k.required_bandwidth(5.0).to_string(),
            k.required_bandwidth(20.0).to_string(),
            k.required_bandwidth(50.0).to_string(),
            k.required_bandwidth(100.0).to_string(),
        ]);
    }
    body.push_str(&t.render());

    body.push_str("\nMaximum sustainable IPC per interconnect:\n\n");
    let links = figure2_links();
    let mut t = TextTable::new([
        "benchmark",
        "PCIe",
        "QPI",
        "HyperTransport",
        "GTX295 Memory",
    ]);
    for k in NPB_KERNELS {
        let mut row = vec![k.name.to_string()];
        for link in &links {
            row.push(format!("{:.1}", k.max_ipc(link.peak())));
        }
        t.row(row);
    }
    body.push_str(&t.render());
    body.push_str(
        "\npaper anchors: \"the maximum achievable value of IPC is 50 for bt and 5 for ua\" \
         over PCIe — reproduced above.\n",
    );
    emit("fig02", &body);
}
