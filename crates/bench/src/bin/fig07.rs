//! Figure 7 — slow-down of GMAC (batch/lazy/rolling) vs the hand-tuned CUDA
//! versions of the Parboil benchmarks.
//!
//! Paper shape: batch-update is always worst (65.18× on pns, 18.61× on
//! rpes); lazy- and rolling-update match CUDA (≈1.0×, occasionally a hair
//! faster).

use gmac::Protocol;
use gmac_bench::{emit, fmt_ratio, fmt_secs, TextTable};
use workloads::{parboil_suite, run_variant, Variant};

fn main() {
    let paper: &[(&str, f64)] = &[("pns", 65.18), ("rpes", 18.61)];
    let mut body = String::new();
    body.push_str("Figure 7 — slow-down w.r.t. CUDA for the Parboil suite\n\n");
    let mut t = TextTable::new([
        "benchmark",
        "CUDA time",
        "GMAC Batch",
        "GMAC Lazy",
        "GMAC Rolling",
        "paper (batch)",
    ]);
    for w in parboil_suite() {
        eprintln!("[fig07] running {} ...", w.name());
        let cuda = run_variant(w.as_ref(), Variant::Cuda).expect("cuda run");
        let base = cuda.elapsed.as_secs_f64();
        let mut row = vec![w.name().to_string(), fmt_secs(base)];
        for protocol in [Protocol::Batch, Protocol::Lazy, Protocol::Rolling] {
            let r = run_variant(w.as_ref(), Variant::Gmac(protocol)).expect("gmac run");
            assert_eq!(r.digest, cuda.digest, "output mismatch on {}", w.name());
            row.push(fmt_ratio(r.elapsed.as_secs_f64() / base));
        }
        let anchor = paper
            .iter()
            .find(|(n, _)| *n == w.name())
            .map(|(_, v)| fmt_ratio(*v))
            .unwrap_or_else(|| "~1x-ish".to_string());
        row.push(anchor);
        t.row(row);
    }
    body.push_str(&t.render());
    body.push_str(
        "\nAll GMAC outputs are digest-identical to the CUDA versions. \
         Lazy/rolling ≈ 1x reproduces the paper's equal-performance claim; \
         batch-update collapses on the iterative benchmarks (pns, rpes).\n",
    );
    emit("fig07", &body);
}
