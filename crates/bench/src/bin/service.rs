//! Service-layer load sweep: wall-clock jobs/sec and p50/p99 end-to-end
//! latency with 100 / 1,000 / 10,000 concurrent client sessions fanning in
//! on one simulated device through the queue → placer → worker pipeline.
//!
//! Virtual-time results are byte-identical with the service on, off, or
//! absent (asserted by the core crate's `service` integration test); this
//! binary measures the front-end itself and records the sweep in
//! `results/BENCH_service.json`. The `cores` field matters: on a single
//! core the placer, device worker and all clients timeshare one CPU, so
//! absolute throughput is machine-relative.
//!
//! Usage: `service [--quick]`

use gmac_bench::service::{run_all, to_json, Scale};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "service-layer load sweep ({} scale, {cores} cores): jobs/sec and latency vs session count\n",
        if quick { "quick" } else { "full" }
    );

    // Warm-up point (thread spawn paths, allocator) outside the numbers.
    run_all(Scale {
        session_counts: &[32],
        ..Scale::quick()
    });
    let points = run_all(scale);

    let mut table = TextTable::new(["sessions", "jobs", "jobs/sec", "p50", "p99", "rejections"]);
    for p in &points {
        table.row([
            p.sessions.to_string(),
            p.jobs.to_string(),
            format!("{:.0}", p.jobs_per_sec),
            gmac_bench::fmt_secs(p.p50_ns as f64 / 1e9),
            gmac_bench::fmt_secs(p.p99_ns as f64 / 1e9),
            p.rejections.to_string(),
        ]);
    }
    gmac_bench::emit("service", &table.render());
    if cores < 2 {
        println!("note: single core — clients, placer and worker timeshare one CPU here");
    }

    let json = to_json(if quick { "quick" } else { "full" }, cores, &points);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_service.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_service.json");
        }
    }
}
