//! Runs every figure generator in sequence (results land in `results/`).
//!
//! Equivalent to executing `fig02 fig07 fig08 fig09 fig10 fig11 fig12
//! porting` one after another, in the order the paper presents them.

use std::process::Command;

fn main() {
    let bins = [
        "fig02",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "porting",
        "coalescing",
    ];
    for bin in bins {
        eprintln!("=== {bin} ===");
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        )
        .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to spawn {bin}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("all figures written to results/");
}
