//! Figure 11 — vector addition (8M elements): host↔accelerator transfer
//! time (lines) and attained PCIe bandwidth (boxes) for block sizes from
//! 4 KB to 32 MB under rolling-update.
//!
//! Paper shape: attained bandwidth rises with block size and saturates
//! around tens of MB; transfer *time* is worst at tiny blocks (per-transfer
//! latency + per-fault overhead dominate), best at mid sizes where eager
//! eviction fully overlaps the CPU's input initialisation, and degrades
//! again for huge blocks that forfeit the overlap (nothing is evicted before
//! the call).

use gmac::{Gmac, GmacConfig, Param, Protocol};
use gmac_bench::{emit, fmt_secs, TextTable};
use hetsim::{Category, LaunchDims, Platform};
use std::sync::Arc;
use workloads::vecadd::{alloc_buffers, VecAddKernel};

const N: usize = 8 * 1024 * 1024;

fn main() {
    let block_sizes: &[u64] = &[
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
    ];
    let mut body = String::new();
    body.push_str("Figure 11 — vecadd (8M elements) transfer time and bandwidth vs block size\n\n");
    let mut t = TextTable::new([
        "block size",
        "H2D phase",
        "D2H phase",
        "total",
        "PCIe H2D bw",
        "PCIe D2H bw",
        "faults",
    ]);
    let link_h2d = hetsim::LinkModel::pcie2_x16_h2d();
    let link_d2h = hetsim::LinkModel::pcie2_x16_d2h();
    for &bs in block_sizes {
        eprintln!("[fig11] block size {} ...", gmac_bench::fmt_bytes(bs));
        let platform = Platform::desktop_g280();
        platform.register_kernel(Arc::new(VecAddKernel));
        let gmac = Gmac::new(
            platform,
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(bs),
        );
        let ctx = gmac.session();
        let bufs = alloc_buffers(&ctx, N).expect("alloc");
        let av: Vec<f32> = (0..N).map(|i| i as f32 * 0.5).collect();
        let bv: Vec<f32> = (0..N).map(|i| i as f32 * 0.25).collect();

        // --- produce phase (H2D side: faults + eager evictions + call flush)
        let copy0 = ctx.ledger().get(Category::Copy);
        ctx.store_slice(bufs.a, &av).expect("store a");
        ctx.store_slice(bufs.b, &bv).expect("store b");
        let params = [
            Param::Shared(bufs.a),
            Param::Shared(bufs.b),
            Param::Shared(bufs.c),
            Param::U64(N as u64),
        ];
        ctx.call("vecadd", LaunchDims::for_elements(N as u64, 256), &params)
            .expect("call");
        let h2d_time = ctx.ledger().get(Category::Copy) - copy0;

        ctx.sync().expect("sync");

        // --- consume phase (D2H side: fetch-on-read of the output)
        let copy1 = ctx.ledger().get(Category::Copy);
        let cv: Vec<f32> = ctx.load_slice(bufs.c, N).expect("load c");
        assert_eq!(cv[1234], 1234.0 * 0.75);
        let d2h_time = ctx.ledger().get(Category::Copy) - copy1;

        t.row([
            gmac_bench::fmt_bytes(bs),
            fmt_secs(h2d_time.as_secs_f64()),
            fmt_secs(d2h_time.as_secs_f64()),
            fmt_secs(ctx.elapsed().as_secs_f64()),
            link_h2d.attained_bandwidth(bs).to_string(),
            link_d2h.attained_bandwidth(bs).to_string(),
            ctx.counters().faults().to_string(),
        ]);
    }
    body.push_str(&t.render());
    body.push_str(
        "\nH2D/D2H phase = CPU time blocked on transfers while producing inputs / \
         consuming the output. Bandwidth columns are the per-transfer attained \
         PCIe bandwidth at that block size (the paper's boxes): they rise and \
         saturate. Small blocks lose to latency + faults; huge blocks lose the \
         eager-eviction overlap (the paper's 64KB anomaly discussion, §5.2).\n",
    );
    emit("fig11", &body);
}
