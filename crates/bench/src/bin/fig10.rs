//! Figure 10 — execution-time break-down for the Parboil benchmarks under
//! rolling-update (CUDA *driver* abstraction layer, i.e. no CUDA
//! initialisation time — exactly the paper's methodology).
//!
//! Paper shape: CPU and GPU compute dominate; I/O is next where present
//! (mri-fhd, mri-q would benefit from peer DMA); **signal handling stays
//! below 2%** everywhere.

use gmac::{AalLayer, GmacConfig, Protocol};
use gmac_bench::{emit, TextTable};
use hetsim::Category;
use workloads::{parboil_suite, run_variant_with, Variant};

fn main() {
    let mut body = String::new();
    body.push_str("Figure 10 — execution-time break-down (% of total), rolling-update\n\n");
    let mut header = vec!["category".to_string()];
    let suite = parboil_suite();
    header.extend(suite.iter().map(|w| w.name().to_string()));
    let mut rows: Vec<Vec<String>> = Category::ALL
        .iter()
        .map(|c| vec![c.label().to_string()])
        .collect();
    let mut signal_max: f64 = 0.0;
    for w in &suite {
        eprintln!("[fig10] running {} ...", w.name());
        let cfg = GmacConfig::default()
            .protocol(Protocol::Rolling)
            .aal(AalLayer::Driver);
        let r = run_variant_with(w.as_ref(), Variant::Gmac(Protocol::Rolling), cfg)
            .expect("rolling run");
        let total = r.ledger.total().as_nanos().max(1) as f64;
        for (i, cat) in Category::ALL.iter().enumerate() {
            let frac = r.ledger.get(*cat).as_nanos() as f64 / total * 100.0;
            rows[i].push(format!("{frac:.1}%"));
            if *cat == Category::Signal {
                signal_max = signal_max.max(frac);
            }
        }
    }
    let mut t = TextTable::new(header);
    for row in rows {
        t.row(row);
    }
    body.push_str(&t.render());
    body.push_str(&format!(
        "\nmax signal-handling share: {signal_max:.2}% — paper: \"the overhead due to \
         signal handling ... is negligible, always below 2% of the total execution time\".\n"
    ));
    emit("fig10", &body);
}
