//! Access-fast-path ablation: wall-clock ns/op for the element-wise,
//! slice and fault-storm access patterns across the three backing/lookup
//! modes — mmap backing + fast path (raw host load/store on the hit
//! path), frame arena + software fast path (TLB/memos), and the fully
//! instrumented baseline. One invocation measures **both backings**, so
//! the ablation is always recorded pairwise.
//!
//! Virtual-time results are byte-identical between modes (asserted by the
//! `hotpath_ablation` and `mmap_backing` integration tests across the
//! workload suite); this binary measures and records the wall-clock
//! difference, seeding the repository's performance trajectory in
//! `results/BENCH_hotpath.json`.
//!
//! Usage: `hotpath [--quick]`

use gmac_bench::hotpath::{run_all, to_json, HostInfo, Scale};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let host = HostInfo::detect();
    println!(
        "access fast-path ablation ({} scale): wall-clock ns/op\n\
         backend: {} | host page size: {} B | cores: {}\n",
        if quick { "quick" } else { "full" },
        host.backend,
        host.host_page_size,
        host.cores
    );

    // Warm-up run (allocator, mappings, code paths) outside the numbers.
    run_all(Scale::quick());
    let results = run_all(scale);

    let mut table = TextTable::new([
        "scenario", "ops", "mmap", "tlb on", "tlb off", "mmap spd", "tlb spd",
    ]);
    for r in &results {
        table.row([
            r.name.to_string(),
            r.mmap.ops.to_string(),
            format!("{:.1} ns/op", r.mmap.ns_per_op()),
            format!("{:.1} ns/op", r.tlb_on.ns_per_op()),
            format!("{:.1} ns/op", r.tlb_off.ns_per_op()),
            gmac_bench::fmt_ratio(r.speedup_mmap()),
            gmac_bench::fmt_ratio(r.speedup_tlb()),
        ]);
    }
    gmac_bench::emit("hotpath", &table.render());

    let json = to_json(if quick { "quick" } else { "full" }, &host, &results);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_hotpath.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_hotpath.json");
        }
    }
}
