//! Access-fast-path ablation: wall-clock ns/op for the element-wise,
//! slice and fault-storm access patterns with the fast path
//! ([`gmac::GmacConfig::tlb`]: software TLB + shard object memo + session
//! route memo) on vs. off.
//!
//! Virtual-time results are byte-identical between modes (asserted by the
//! `hotpath_ablation` integration test across all nine workloads); this
//! binary measures and records the wall-clock difference, seeding the
//! repository's performance trajectory in `results/BENCH_hotpath.json`.
//!
//! Usage: `hotpath [--quick]`

use gmac_bench::hotpath::{run_all, to_json, Scale};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    println!(
        "access fast-path ablation ({} scale): wall-clock ns/op, tlb on vs off\n",
        if quick { "quick" } else { "full" }
    );

    // Warm-up run (allocator, frame arena, code paths) outside the numbers.
    run_all(Scale::quick());
    let results = run_all(scale);

    let mut table = TextTable::new(["scenario", "ops", "tlb on", "tlb off", "speedup"]);
    for r in &results {
        table.row([
            r.name.to_string(),
            r.tlb_on.ops.to_string(),
            format!("{:.1} ns/op", r.tlb_on.ns_per_op()),
            format!("{:.1} ns/op", r.tlb_off.ns_per_op()),
            gmac_bench::fmt_ratio(r.speedup()),
        ]);
    }
    gmac_bench::emit("hotpath", &table.render());

    let json = to_json(if quick { "quick" } else { "full" }, &results);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_hotpath.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_hotpath.json");
        }
    }
}
