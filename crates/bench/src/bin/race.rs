//! Race-detector overhead ablation: wall-clock ns/op for the fast-path
//! scalar loop, the slow-path store loop and the call/sync round trip with
//! [`gmac::GmacConfig::race_check`] off vs on.
//!
//! Virtual-time results are byte-identical between the two modes on
//! race-free runs (asserted by the `race` integration suite across the
//! workload suite); this binary measures and records the host wall-clock
//! difference, seeding the repository's performance trajectory in
//! `results/BENCH_race.json`.
//!
//! Usage: `race [--quick]`

use gmac_bench::hotpath::Scale;
use gmac_bench::race::{run_all, to_json};
use gmac_bench::TextTable;
use std::io::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    println!(
        "race-detector overhead ablation ({} scale): wall-clock ns/op\n",
        if quick { "quick" } else { "full" },
    );

    // Warm-up run (allocator, mappings, code paths) outside the numbers.
    run_all(Scale::quick());
    let results = run_all(scale);

    let mut table = TextTable::new(["scenario", "ops", "race off", "race on", "overhead"]);
    for r in &results {
        table.row([
            r.name.to_string(),
            r.off.ops.to_string(),
            format!("{:.1} ns/op", r.off.ns_per_op()),
            format!("{:.1} ns/op", r.on.ns_per_op()),
            gmac_bench::fmt_ratio(r.overhead()),
        ]);
    }
    gmac_bench::emit("race", &table.render());

    let json = to_json(if quick { "quick" } else { "full" }, &results);
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/BENCH_race.json") {
            let _ = f.write_all(json.as_bytes());
            println!("wrote results/BENCH_race.json");
        }
    }
}
