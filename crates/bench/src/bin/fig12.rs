//! Figure 12 — tpacf execution time for different memory-block sizes under
//! rolling sizes 1, 2 and 4.
//!
//! Paper shape (§5.3): with rolling size 1 or 2 and small blocks, the
//! multi-pass initialisation continuously re-transfers blocks (each pass
//! re-dirties blocks that were already evicted); execution time *rises* with
//! block size (every re-dirty eventually moves a bigger block) until a
//! critical block size lets the pass working-set fit in the rolling size —
//! then time drops abruptly. Rolling size 4 holds all write streams and
//! stays flat.

use gmac::{GmacConfig, Protocol};
use gmac_bench::{emit, fmt_secs, TextTable};
use workloads::tpacf::Tpacf;
use workloads::{run_variant_with, Variant};

fn main() {
    let block_sizes: &[(u64, &str)] = &[
        (128 << 10, "128KB"),
        (256 << 10, "256KB"),
        (512 << 10, "512KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
        (4 << 20, "4MB"),
        (8 << 20, "8MB"),
        (16 << 20, "16MB"),
        (32 << 20, "32MB"),
    ];
    // 8 MB random-set structure with write streams lagging 1 MB / 2 MB: the
    // thrash-stop thresholds land mid-sweep like the paper's 2 MB / 4 MB.
    let w = Tpacf {
        nrandom: 1024 * 1024,
        sets: 1,
        pass_lags: [1 << 20, 2 << 20],
        ..Tpacf::default()
    };
    let mut body = String::new();
    body.push_str("Figure 12 — tpacf execution time vs block size and rolling size\n\n");
    let mut t = TextTable::new([
        "block size",
        "tpacf-1",
        "tpacf-2",
        "tpacf-4",
        "h2d-1",
        "h2d-4",
    ]);
    for &(bs, label) in block_sizes {
        eprintln!("[fig12] block size {label} ...");
        let mut times = Vec::new();
        let mut h2d = Vec::new();
        for rolling in [1usize, 2, 4] {
            let cfg = GmacConfig::default().block_size(bs).rolling_size(rolling);
            let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("tpacf run");
            times.push(fmt_secs(r.elapsed.as_secs_f64()));
            h2d.push(r.transfers.h2d_bytes);
        }
        t.row([
            label.to_string(),
            times[0].clone(),
            times[1].clone(),
            times[2].clone(),
            gmac_bench::fmt_bytes(h2d[0]),
            gmac_bench::fmt_bytes(h2d[2]),
        ]);
    }
    body.push_str(&t.render());
    body.push_str(
        "\nPaper shape: tpacf-1/tpacf-2 rise with block size while thrashing, then \
         drop abruptly once the pass working-set fits the rolling size; tpacf-4 is \
         flat and low. The h2d columns expose the continuous re-transfer volume.\n",
    );
    emit("fig12", &body);
}
