//! Coalescing ablation — the transfer engine's dirty-range aggregation on
//! the rolling-update stencil workload (and the vecadd microworkload for
//! contrast), coalescing on vs off.
//!
//! Expected shape: identical bytes in both configurations, but with
//! coalescing enabled the planner merges runs of adjacent blocks into few
//! large DMA jobs — fewer jobs, more bytes and blocks per job, and a faster
//! virtual run time because the PCIe per-job latency is paid once per run
//! instead of once per block.

use gmac::{GmacConfig, Protocol};
use gmac_bench::{emit, fmt_bytes, fmt_secs, TextTable};
use hetsim::Direction;
use workloads::stencil3d::Stencil3d;
use workloads::vecadd::VecAdd;
use workloads::{run_variant_with, RunResult, Variant, Workload};

fn run(w: &dyn Workload, coalescing: bool) -> RunResult {
    let cfg = GmacConfig::default()
        .block_size(64 * 1024)
        .coalescing(coalescing);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("run")
}

fn main() {
    let mut body = String::new();
    body.push_str("Coalescing ablation — rolling-update through the transfer planner\n\n");
    let mut t = TextTable::new([
        "workload",
        "coalescing",
        "dma jobs",
        "bytes",
        "bytes/job",
        "blocks/job (D2H)",
        "time",
    ]);
    let stencil = Stencil3d {
        n: 64,
        steps: 8,
        dump_every: 4,
    };
    let vecadd = VecAdd { n: 512 * 1024 };
    let workloads: [&dyn Workload; 2] = [&stencil, &vecadd];
    for w in workloads {
        for coalescing in [true, false] {
            eprintln!(
                "[coalescing] running {} (coalescing={coalescing}) ...",
                w.name()
            );
            let r = run(w, coalescing);
            let jobs = r.transfers.total_jobs();
            t.row([
                w.name().to_string(),
                if coalescing { "on" } else { "off" }.to_string(),
                jobs.to_string(),
                fmt_bytes(r.transfers.total_bytes()),
                fmt_bytes(r.transfers.total_bytes() / jobs.max(1)),
                format!(
                    "{:.2}",
                    r.transfers.coalescing_ratio(Direction::DeviceToHost)
                ),
                fmt_secs(r.elapsed.as_secs_f64()),
            ]);
        }
    }
    body.push_str(&t.render());
    body.push_str(
        "\nSame bytes either way; coalescing folds runs of adjacent blocks into \
         single DMA jobs, so the job count falls and bytes-per-job rises.\n",
    );
    emit("coalescing", &body);
}
