//! Shared harness for the access-fast-path ablation: the same element-wise,
//! slice and fault-storm workloads timed in **wall-clock** nanoseconds per
//! operation across three backing/lookup modes:
//!
//! * [`Mode::Mmap`] — real reserve/commit backing ([`GmacConfig::mmap_backing`])
//!   plus the software fast path: an accessible-block scalar access is a raw
//!   host load/store against the mapping, zero instrumentation on the hit path.
//! * [`Mode::TableWalk`] — frame-arena backing with the software fast path
//!   ([`GmacConfig::tlb`]: TLB + shard object memo + session route memo).
//! * [`Mode::Baseline`] — frame-arena backing, fast path off: full radix
//!   walk, manager search and registry route per access.
//!
//! Virtual-time results are byte-identical between all modes — only host
//! time differs — which the `hotpath_ablation` (tlb toggle) and
//! `mmap_backing` (backing toggle) integration tests enforce across the
//! workload suite.
//!
//! Used by the `hotpath` binary (which writes `results/BENCH_hotpath.json`)
//! and the `access_path` criterion bench.

use gmac::{Gmac, GmacConfig, Protocol, Session};
use hetsim::Platform;
use std::fmt::Write as _;
use std::time::Instant;

/// Problem sizes for one run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Elements touched by the scalar loop (per pass).
    pub scalar_elems: usize,
    /// Scalar-loop passes.
    pub scalar_passes: usize,
    /// Bytes moved per slice op.
    pub slice_bytes: usize,
    /// Slice passes.
    pub slice_passes: usize,
    /// Blocks faulted per storm round.
    pub storm_blocks: usize,
    /// Fault-storm rounds.
    pub storm_rounds: usize,
}

impl Scale {
    /// Full measurement scale.
    pub fn full() -> Self {
        Scale {
            scalar_elems: 64 * 1024,
            scalar_passes: 12,
            slice_bytes: 4 << 20,
            slice_passes: 12,
            storm_blocks: 512,
            storm_rounds: 24,
        }
    }

    /// CI smoke scale (`--quick`).
    pub fn quick() -> Self {
        Scale {
            scalar_elems: 16 * 1024,
            scalar_passes: 3,
            slice_bytes: 1 << 20,
            slice_passes: 3,
            storm_blocks: 128,
            storm_rounds: 4,
        }
    }
}

/// One backing/lookup configuration under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// mmap backing + fast path: raw host load/store on the hit path.
    Mmap,
    /// Frame-arena backing + software fast path (TLB/memos).
    TableWalk,
    /// Frame-arena backing, fast path off: the instrumented baseline.
    Baseline,
}

impl Mode {
    /// All modes, in headline-first order.
    pub const ALL: [Mode; 3] = [Mode::Mmap, Mode::TableWalk, Mode::Baseline];

    fn config(self) -> GmacConfig {
        let base = GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096);
        match self {
            Mode::Mmap => base.mmap_backing(true).tlb(true),
            Mode::TableWalk => base.mmap_backing(false).tlb(true),
            Mode::Baseline => base.mmap_backing(false).tlb(false),
        }
    }
}

/// Wall-clock result of one scenario in one mode.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Operations performed.
    pub ops: u64,
    /// Total wall-clock nanoseconds.
    pub wall_ns: u64,
}

impl Sample {
    /// Nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }
}

/// One scenario measured in all three modes.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioResult {
    /// Scenario name (`scalar_loop`, `slice`, `fault_storm`).
    pub name: &'static str,
    /// mmap backing + fast path (the headline configuration).
    pub mmap: Sample,
    /// Frame arena + software fast path.
    pub tlb_on: Sample,
    /// Frame arena, fast path off (instrumented baseline).
    pub tlb_off: Sample,
}

impl ScenarioResult {
    /// Wall-clock speedup of the mmap hit path over the instrumented
    /// baseline (off / mmap).
    pub fn speedup_mmap(&self) -> f64 {
        self.tlb_off.ns_per_op() / self.mmap.ns_per_op().max(f64::MIN_POSITIVE)
    }

    /// Wall-clock speedup of the software fast path alone (off / on).
    pub fn speedup_tlb(&self) -> f64 {
        self.tlb_off.ns_per_op() / self.tlb_on.ns_per_op().max(f64::MIN_POSITIVE)
    }
}

/// Host facts recorded alongside the numbers so a `BENCH_hotpath.json`
/// artifact is interpretable away from the machine that produced it.
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Backing the default config actually got (`"mmap"`, or
    /// `"table-walk"` when the reservation was refused and the runtime
    /// degraded).
    pub backend: &'static str,
    /// Host page size in bytes (0 if the sysconf probe failed).
    pub host_page_size: u64,
    /// Available hardware parallelism.
    pub cores: usize,
}

impl HostInfo {
    /// Probes the host: builds a default-config runtime and reports which
    /// backend it actually got, plus page size and core count.
    pub fn detect() -> Self {
        let probe = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
        let backend = if probe.report().mmap_backing {
            "mmap"
        } else {
            "table-walk"
        };
        HostInfo {
            backend,
            host_page_size: softmmu::sys::page_size().unwrap_or(0),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Live objects kept in the registry/manager besides the measured one,
/// so routing and lookup structures have realistic depth (the paper's
/// workloads keep several shared objects live at once).
const BACKGROUND_OBJECTS: usize = 32;

fn session(mode: Mode) -> (Gmac, Session) {
    let gmac = Gmac::new(Platform::desktop_g280(), mode.config());
    let session = gmac.session();
    for _ in 0..BACKGROUND_OBJECTS {
        session.alloc(64 * 1024).expect("background alloc");
    }
    (gmac, session)
}

/// Element-wise loop: one `write` + one `read` per element per pass — the
/// paper's transparent CPU access pattern, dominated by per-access
/// translation cost once the first pass has resolved all faults. On
/// [`Mode::Mmap`] each access is a raw host load/store.
pub fn scalar_loop(mode: Mode, scale: Scale) -> Sample {
    let (_g, s) = session(mode);
    let v = s.alloc_typed::<u32>(scale.scalar_elems).expect("alloc");
    // Warm pass: resolve every first-touch fault outside the measurement.
    for i in 0..scale.scalar_elems {
        v.write(i, i as u32).expect("warm write");
    }
    let start = Instant::now();
    let mut acc = 0u32;
    for _ in 0..scale.scalar_passes {
        for i in 0..scale.scalar_elems {
            v.write(i, acc).expect("write");
            acc = acc.wrapping_add(v.read(i).expect("read"));
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    std::hint::black_box(acc);
    Sample {
        ops: (scale.scalar_passes * scale.scalar_elems * 2) as u64,
        wall_ns,
    }
}

/// Bulk slice ops: `store_slice` + `load_slice` of a multi-MB buffer per
/// pass (translation once per page, copy bandwidth bound; on
/// [`Mode::Mmap`] each accessible span collapses to one `memcpy`).
pub fn slice(mode: Mode, scale: Scale) -> Sample {
    let (_g, s) = session(mode);
    let p = s.alloc(scale.slice_bytes as u64).expect("alloc");
    let data = vec![0xA5u8; scale.slice_bytes];
    s.store_slice::<u8>(p, &data).expect("warm store");
    let start = Instant::now();
    for _ in 0..scale.slice_passes {
        s.store_slice::<u8>(p, &data).expect("store");
        std::hint::black_box(s.load_slice::<u8>(p, scale.slice_bytes).expect("load"));
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    Sample {
        ops: (scale.slice_passes * 2) as u64, // whole-buffer ops
        wall_ns,
    }
}

/// Fault storm: every round invalidates the object (a protocol release,
/// i.e. a batched mprotect) and then touches one element per block, paying
/// one fault + fetch per block — the signal-handler path of §4.3.
pub fn fault_storm(mode: Mode, scale: Scale) -> Sample {
    let (_g, s) = session(mode);
    let p = s.alloc(scale.storm_blocks as u64 * 4096).expect("alloc");
    let start = Instant::now();
    for _ in 0..scale.storm_rounds {
        s.with_parts(|rt, mgr, proto| {
            proto.release(rt, mgr, hetsim::DeviceId(0), None)?;
            rt.join_dma(hetsim::DeviceId(0))
        })
        .expect("release");
        for b in 0..scale.storm_blocks {
            std::hint::black_box(s.load::<u32>(p.byte_add(b as u64 * 4096)).expect("load"));
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    Sample {
        ops: (scale.storm_rounds * scale.storm_blocks) as u64,
        wall_ns,
    }
}

/// Best-of-`rounds` measurement: returns the sample with the lowest
/// ns/op — the standard minimum-noise estimator for microbenchmarks (OS
/// scheduling and cache pollution only ever add time).
pub fn best_of(rounds: usize, mut f: impl FnMut() -> Sample) -> Sample {
    (0..rounds.max(1))
        .map(|_| f())
        .min_by(|a, b| a.ns_per_op().total_cmp(&b.ns_per_op()))
        .expect("at least one round")
}

/// Runs all scenarios in all three modes (best of three rounds each).
pub fn run_all(scale: Scale) -> Vec<ScenarioResult> {
    let mut results = Vec::new();
    for (name, f) in [
        ("scalar_loop", scalar_loop as fn(Mode, Scale) -> Sample),
        ("slice", slice as fn(Mode, Scale) -> Sample),
        ("fault_storm", fault_storm as fn(Mode, Scale) -> Sample),
    ] {
        let mmap = best_of(3, || f(Mode::Mmap, scale));
        let tlb_on = best_of(3, || f(Mode::TableWalk, scale));
        let tlb_off = best_of(3, || f(Mode::Baseline, scale));
        results.push(ScenarioResult {
            name,
            mmap,
            tlb_on,
            tlb_off,
        });
    }
    results
}

/// Renders the results as the `BENCH_hotpath.json` document (hand-rolled:
/// the container has no serde). `scale` labels the measurement so a CI
/// `--quick` artifact is never mistaken for a full-scale trajectory point;
/// `host` pins the backend, page size and core count the numbers were
/// produced under.
pub fn to_json(scale: &str, host: &HostInfo, results: &[ScenarioResult]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"scale\": \"{scale}\",\n  \"unit\": \"ns/op\",\n  \
         \"backend\": \"{}\",\n  \"host_page_size\": {},\n  \"cores\": {},\n  \"scenarios\": [\n",
        host.backend, host.host_page_size, host.cores
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"ops\": {}, \"mmap_ns_per_op\": {:.2}, \
             \"tlb_on_ns_per_op\": {:.2}, \"tlb_off_ns_per_op\": {:.2}, \
             \"speedup_mmap\": {:.3}, \"speedup_tlb\": {:.3}}}",
            r.name,
            r.mmap.ops,
            r.mmap.ns_per_op(),
            r.tlb_on.ns_per_op(),
            r.tlb_off.ns_per_op(),
            r.speedup_mmap(),
            r.speedup_tlb(),
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
