//! Race-detector overhead bench: wall-clock ns/op for the access and
//! call/sync patterns with [`GmacConfig::race_check`] **off vs on**.
//!
//! Virtual-time results are byte-identical between the two modes on
//! race-free runs (asserted by the `race` integration suite across the
//! workload suite); this harness measures and records the **host**
//! wall-clock cost of the detector's hooks:
//!
//! * `scalar_loop` — element-wise fast-path accesses. The detector's
//!   write hook only fires on the slow path, so the hit path must stay a
//!   raw host access; any overhead here is fast-path regression.
//! * `store_loop` — slow-path scalar stores (`Session::store`), the
//!   choke point where every program write is stamped and checked.
//! * `launch_sync` — a call/sync round trip per op: launch check, epoch
//!   advance and block downgrades, the per-boundary cost.
//!
//! Used by the `race` binary (which writes `results/BENCH_race.json`).

use crate::hotpath::{best_of, Sample, Scale};
use gmac::{Gmac, GmacConfig, Param, Protocol, Session};
use hetsim::{LaunchDims, Platform};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn session(race_check: bool) -> (Gmac, Session) {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(gmac::testutil::NopKernel));
    let gmac = Gmac::new(
        platform,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096)
            .race_check(race_check),
    );
    let session = gmac.session();
    (gmac, session)
}

/// Element-wise fast-path loop (same shape as the hotpath bench): the
/// detector must not instrument the hit path, so off/on should measure
/// equal within noise.
pub fn scalar_loop(race_check: bool, scale: Scale) -> Sample {
    let (_g, s) = session(race_check);
    let v = s.alloc_typed::<u32>(scale.scalar_elems).expect("alloc");
    for i in 0..scale.scalar_elems {
        v.write(i, i as u32).expect("warm write");
    }
    let start = Instant::now();
    let mut acc = 0u32;
    for _ in 0..scale.scalar_passes {
        for i in 0..scale.scalar_elems {
            v.write(i, acc).expect("write");
            acc = acc.wrapping_add(v.read(i).expect("read"));
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    std::hint::black_box(acc);
    Sample {
        ops: (scale.scalar_passes * scale.scalar_elems * 2) as u64,
        wall_ns,
    }
}

/// Slow-path scalar stores: every op runs the full shard write path, which
/// with the detector on includes one stamp-and-check per store. This is the
/// per-access overhead headline.
pub fn store_loop(race_check: bool, scale: Scale) -> Sample {
    let (_g, s) = session(race_check);
    let p = s.alloc(4 * scale.scalar_elems as u64).expect("alloc");
    s.store::<u32>(p, 0).expect("warm store");
    let start = Instant::now();
    for pass in 0..scale.scalar_passes {
        for i in 0..scale.scalar_elems {
            s.store::<u32>(p.byte_add(4 * i as u64), pass as u32)
                .expect("store");
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    Sample {
        ops: (scale.scalar_passes * scale.scalar_elems) as u64,
        wall_ns,
    }
}

/// Call/sync round trips over a multi-block object: each op pays the launch
/// check, the epoch advance and the per-block downgrade walk.
pub fn launch_sync(race_check: bool, scale: Scale) -> Sample {
    let (_g, s) = session(race_check);
    let p = s.alloc(scale.storm_blocks as u64 * 4096).expect("alloc");
    s.store::<u32>(p, 1).expect("warm store");
    let rounds = scale.storm_rounds.max(8);
    let start = Instant::now();
    for _ in 0..rounds {
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .expect("call");
        s.sync().expect("sync");
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    Sample {
        ops: rounds as u64,
        wall_ns,
    }
}

/// One scenario measured with the detector off and on.
#[derive(Debug, Clone, Copy)]
pub struct RaceResult {
    /// Scenario name (`scalar_loop`, `store_loop`, `launch_sync`).
    pub name: &'static str,
    /// `race_check(false)` — the production default.
    pub off: Sample,
    /// `race_check(true)`.
    pub on: Sample,
}

impl RaceResult {
    /// Wall-clock overhead factor of the detector (on / off; 1.0 = free).
    pub fn overhead(&self) -> f64 {
        self.on.ns_per_op() / self.off.ns_per_op().max(f64::MIN_POSITIVE)
    }
}

/// Runs all scenarios off and on (best of three rounds each).
pub fn run_all(scale: Scale) -> Vec<RaceResult> {
    let mut results = Vec::new();
    for (name, f) in [
        ("scalar_loop", scalar_loop as fn(bool, Scale) -> Sample),
        ("store_loop", store_loop as fn(bool, Scale) -> Sample),
        ("launch_sync", launch_sync as fn(bool, Scale) -> Sample),
    ] {
        let off = best_of(3, || f(false, scale));
        let on = best_of(3, || f(true, scale));
        results.push(RaceResult { name, off, on });
    }
    results
}

/// Renders the results as the `BENCH_race.json` document (hand-rolled: the
/// container has no serde). `scale` labels the measurement so a CI
/// `--quick` artifact is never mistaken for a full-scale trajectory point.
pub fn to_json(scale: &str, results: &[RaceResult]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"race\",\n  \"scale\": \"{scale}\",\n  \"unit\": \"ns/op\",\n  \
         \"scenarios\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"ops\": {}, \"off_ns_per_op\": {:.2}, \
             \"on_ns_per_op\": {:.2}, \"overhead\": {:.3}}}",
            r.name,
            r.off.ops,
            r.off.ns_per_op(),
            r.on.ns_per_op(),
            r.overhead(),
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
