//! Shared harness for the lock-contention ablation: N OS threads × N
//! accelerators running vecadd rounds, timed in **wall-clock** (not virtual)
//! time under the sharded runtime vs. the global-lock ablation mode
//! ([`GmacConfig::sharding`]). Used by the `contention` binary and the
//! `contention_ablation` integration test.

use gmac::{Gmac, GmacConfig, Param};
use hetsim::{DeviceId, LaunchDims, Platform};
use std::sync::Arc;
use std::time::Instant;
use workloads::vecadd::VecAddKernel;
use workloads::Digest;

/// One device's deterministic inputs (distinct per device so a swapped
/// buffer cannot digest equal).
fn inputs(dev: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..n)
        .map(|i| ((i + dev * 131) % 9973) as f32 * 0.25)
        .collect();
    let b: Vec<f32> = (0..n)
        .map(|i| ((i + dev * 17) % 7919) as f32 * 0.5)
        .collect();
    (a, b)
}

/// Runs `reps` vecadd rounds on `dev` through one session, returning the
/// digest of all outputs.
pub fn device_round(gmac: &Gmac, dev: usize, n: usize, reps: usize) -> u64 {
    let session = gmac.session_on(DeviceId(dev));
    let (va, vb) = inputs(dev, n);
    let mut digest = Digest::new();
    for _ in 0..reps {
        let a = session.safe_alloc_typed::<f32>(n).expect("alloc a");
        let b = session.safe_alloc_typed::<f32>(n).expect("alloc b");
        let c = session.safe_alloc_typed::<f32>(n).expect("alloc c");
        a.write_slice(&va).expect("write a");
        b.write_slice(&vb).expect("write b");
        session
            .call(
                "vecadd",
                LaunchDims::for_elements(n as u64, 256),
                &[
                    Param::from(&a),
                    Param::from(&b),
                    Param::from(&c),
                    Param::U64(n as u64),
                ],
            )
            .expect("call");
        session.sync().expect("sync");
        let out = c.read_slice().expect("read c");
        digest.update_f32(&out);
    }
    digest.finish()
}

/// Result of one mode's run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeResult {
    /// Wall-clock seconds for the whole round (spawn to last join).
    pub wall_secs: f64,
    /// Per-device output digests (index = device id).
    pub digests: Vec<u64>,
    /// Total *virtual* time the platform clock advanced.
    pub virtual_elapsed: hetsim::Nanos,
}

/// Spawns one OS thread per device, each running [`device_round`] through
/// its own session, and measures wall-clock time spawn-to-join.
pub fn run_mode(sharding: bool, devices: usize, n: usize, reps: usize) -> ModeResult {
    let platform = Platform::desktop_multi_gpu(devices);
    platform.register_kernel(Arc::new(VecAddKernel));
    let gmac = Gmac::new(platform, GmacConfig::default().sharding(sharding));
    let start = Instant::now();
    let handles: Vec<_> = (0..devices)
        .map(|dev| {
            let gmac = gmac.clone();
            std::thread::spawn(move || device_round(&gmac, dev, n, reps))
        })
        .collect();
    let digests: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall_secs = start.elapsed().as_secs_f64();
    ModeResult {
        wall_secs,
        digests,
        virtual_elapsed: gmac.elapsed(),
    }
}

/// Single-threaded single-device run (the byte-identical baseline the
/// ablation test compares across lock modes).
pub fn run_single(sharding: bool, n: usize, reps: usize) -> (u64, hetsim::Nanos) {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(VecAddKernel));
    let gmac = Gmac::new(platform, GmacConfig::default().sharding(sharding));
    let digest = device_round(&gmac, 0, n, reps);
    (digest, gmac.elapsed())
}
