//! Criterion bench over the access fast path: scalar-loop, slice and
//! fault-storm access patterns across the three backing/lookup modes
//! (mmap + fast path, frame arena + software fast path, instrumented
//! baseline). The `hotpath` binary is the JSON-emitting companion; this
//! bench gives per-scenario us/iter under the criterion harness (and doubles
//! as a smoke test that the scenarios keep running).

use criterion::{criterion_group, criterion_main, Criterion};
use gmac_bench::hotpath::{fault_storm, scalar_loop, slice, Mode, Scale};

fn access_path(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("access_path");
    group.sample_size(10);
    for mode in Mode::ALL {
        let label = match mode {
            Mode::Mmap => "mmap",
            Mode::TableWalk => "tlb_on",
            Mode::Baseline => "tlb_off",
        };
        group.bench_function(&format!("scalar_loop/{label}"), |b| {
            b.iter(|| scalar_loop(mode, scale))
        });
        group.bench_function(&format!("slice/{label}"), |b| b.iter(|| slice(mode, scale)));
        group.bench_function(&format!("fault_storm/{label}"), |b| {
            b.iter(|| fault_storm(mode, scale))
        });
    }
    group.finish();
}

criterion_group!(benches, access_path);
criterion_main!(benches);
