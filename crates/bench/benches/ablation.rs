//! Ablation benches for the design choices DESIGN.md calls out, measured in
//! *virtual time* (the quantity the paper reports) but driven through
//! Criterion so they appear in `cargo bench` output. Each bench's wall time
//! is the simulator cost; the interesting numbers are printed once per
//! configuration as `[ablation] ...` lines.

use criterion::{criterion_group, criterion_main, Criterion};
use gmac::{GmacConfig, Protocol};
use std::sync::Once;
use workloads::stencil3d::Stencil3d;
use workloads::vecadd::VecAdd;
use workloads::{run_variant_with, Variant};

static PRINT_ONCE: Once = Once::new();

/// Prints the virtual-time ablation tables once (protocol choice, eager vs
/// synchronous eviction, write-annotation) and keeps a tiny Criterion
/// measurement so the bench integrates with `cargo bench`.
fn ablation_tables(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        // 1. Protocol choice on a small vecadd.
        let w = VecAdd { n: 512 * 1024 };
        println!("[ablation] protocol choice (vecadd 512k):");
        for protocol in Protocol::ALL {
            let r =
                run_variant_with(&w, Variant::Gmac(protocol), GmacConfig::default()).expect("run");
            println!(
                "[ablation]   {:<14} {:>10.3} ms  h2d {:>10} d2h {:>10}",
                protocol.to_string(),
                r.elapsed.as_millis_f64(),
                r.transfers.h2d_bytes,
                r.transfers.d2h_bytes
            );
        }

        // 2. Eager (async) vs synchronous eviction.
        println!("[ablation] eager vs synchronous eviction (vecadd 512k, rolling):");
        for eager in [true, false] {
            let cfg = GmacConfig::default().eager_eviction(eager);
            let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("run");
            println!(
                "[ablation]   eager={:<5} {:>10.3} ms",
                eager,
                r.elapsed.as_millis_f64()
            );
        }

        // 3. Dirty-range coalescing in the transfer planner (the dedicated
        //    `coalescing` figure binary prints the full table).
        println!("[ablation] transfer coalescing (stencil 64^3, rolling):");
        let w = Stencil3d {
            n: 64,
            steps: 4,
            dump_every: 4,
        };
        for coalescing in [true, false] {
            let cfg = GmacConfig::default()
                .block_size(64 << 10)
                .coalescing(coalescing);
            let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("run");
            println!(
                "[ablation]   coalescing={:<5} {:>10.3} ms  {:>6} dma jobs  {:>10} bytes",
                coalescing,
                r.elapsed.as_millis_f64(),
                r.transfers.total_jobs(),
                r.transfers.total_bytes(),
            );
        }

        // 4. Block size on the stencil (Figure 9 in miniature).
        println!("[ablation] block size (stencil 64^3, rolling):");
        let w = Stencil3d {
            n: 64,
            steps: 4,
            dump_every: 4,
        };
        for bs in [16u64 << 10, 256 << 10, 4 << 20] {
            let cfg = GmacConfig::default().block_size(bs);
            let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("run");
            println!(
                "[ablation]   block {:>8} {:>10.3} ms",
                bs,
                r.elapsed.as_millis_f64()
            );
        }
    });

    // Keep a real measurement so Criterion reports something meaningful:
    // one full simulated vecadd round per iteration.
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("vecadd_64k_sim_round", |b| {
        let w = VecAdd { n: 64 * 1024 };
        b.iter(|| {
            run_variant_with(&w, Variant::Gmac(Protocol::Rolling), GmacConfig::default())
                .expect("run")
        });
    });
    g.finish();
}

criterion_group!(benches, ablation_tables);
criterion_main!(benches);
