//! Criterion micro-benchmarks: *real wall-clock* cost of the library's own
//! mechanisms (the virtual-time figures live in the `fig*` binaries).
//!
//! Covers the data structures the paper calls out: the fault path (§4.3
//! signal handler), the balanced-tree block lookup (§5.2, `O(log2 n)`), the
//! page table, the device allocator and the DMA timeline engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmac::{Gmac, GmacConfig, LookupKind, Protocol};
use hetsim::{CopyMode, DeviceId, Platform};
use softmmu::{AddressSpace, Protection, VAddr, PAGE_SIZE};
use std::hint::black_box;

/// Page-table map/translate/unmap throughput.
fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmmu");
    g.bench_function("map_unmap_page", |b| {
        let mut vm = AddressSpace::new();
        let mut addr = 0x4_0000_0000u64;
        b.iter(|| {
            let id = vm
                .map_fixed(VAddr(addr), PAGE_SIZE, Protection::ReadWrite)
                .unwrap();
            vm.unmap_region(id).unwrap();
            addr += PAGE_SIZE * 2;
        });
    });
    g.bench_function("checked_read_4k", |b| {
        let mut vm = AddressSpace::new();
        let base = VAddr(0x4_0000_0000);
        vm.map_fixed(base, 1 << 20, Protection::ReadWrite).unwrap();
        let mut buf = vec![0u8; 4096];
        b.iter(|| {
            vm.read_bytes(base + 8192, black_box(&mut buf)).unwrap();
        });
    });
    g.bench_function("protect_range_64k", |b| {
        let mut vm = AddressSpace::new();
        let base = VAddr(0x4_0000_0000);
        vm.map_fixed(base, 1 << 20, Protection::ReadWrite).unwrap();
        let mut flip = false;
        b.iter(|| {
            let prot = if flip {
                Protection::ReadOnly
            } else {
                Protection::ReadWrite
            };
            flip = !flip;
            vm.protect(base, 64 << 10, prot).unwrap();
        });
    });
    g.finish();
}

/// The paper's §5.2 lookup discussion: balanced tree vs linear scan when the
/// fault handler locates a block.
fn bench_block_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("manager_lookup");
    for &objects in &[16usize, 256] {
        for (label, kind) in [("tree", LookupKind::Tree), ("linear", LookupKind::Linear)] {
            g.bench_with_input(BenchmarkId::new(label, objects), &objects, |b, &objects| {
                let ctx = Gmac::new(Platform::desktop_g280(), GmacConfig::default().lookup(kind))
                    .session();
                let ptrs: Vec<_> = (0..objects)
                    .map(|_| ctx.alloc(256 * 1024).unwrap())
                    .collect();
                let probe = ptrs[objects / 2].byte_add(1234);
                b.iter(|| black_box(ctx.object_at(black_box(probe)).is_some()));
            });
        }
    }
    g.finish();
}

/// Full fault path: checked store on a read-only block -> signal charge ->
/// protocol transition -> retry.
fn bench_fault_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_path");
    g.bench_function("write_fault_resolution", |b| {
        let ctx = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .rolling_size(1_000_000),
        )
        .session();
        let p = ctx.alloc(64 << 20).unwrap();
        let blocks = 64 << 20 >> 18; // 256 KiB blocks
        let mut i = 0u64;
        b.iter(|| {
            // Touch a fresh block every iteration: every store faults once.
            let off = (i % blocks) * (256 << 10);
            i += 1;
            ctx.store::<u32>(p.byte_add(off), 7).unwrap();
        });
    });
    g.bench_function("store_no_fault", |b| {
        let ctx = Gmac::new(Platform::desktop_g280(), GmacConfig::default()).session();
        let p = ctx.alloc(4096).unwrap();
        ctx.store::<u32>(p, 1).unwrap(); // now dirty: no more faults
        b.iter(|| ctx.store::<u32>(black_box(p), black_box(9)).unwrap());
    });
    g.finish();
}

/// Device allocator behaviour under churn.
fn bench_devmem(c: &mut Criterion) {
    let mut g = c.benchmark_group("devmem");
    g.bench_function("alloc_free_churn", |b| {
        let p = Platform::desktop_g280();
        b.iter(|| {
            let a = p.dev_alloc(DeviceId(0), 1 << 16).unwrap();
            let bb = p.dev_alloc(DeviceId(0), 1 << 20).unwrap();
            p.dev_free(DeviceId(0), a).unwrap();
            p.dev_free(DeviceId(0), bb).unwrap();
        });
    });
    g.finish();
}

/// DMA engine: simulation throughput of timed transfers.
fn bench_dma(c: &mut Criterion) {
    let mut g = c.benchmark_group("dma_engine");
    for &size in &[4096u64, 1 << 20] {
        g.bench_with_input(BenchmarkId::new("copy_h2d", size), &size, |b, &size| {
            let p = Platform::desktop_g280();
            let dst = p.dev_alloc(DeviceId(0), size).unwrap();
            let src = vec![0xA5u8; size as usize];
            b.iter(|| {
                p.copy_h2d(DeviceId(0), dst, black_box(&src), CopyMode::Sync)
                    .unwrap();
            });
        });
    }
    g.finish();
}

/// End-to-end simulated application throughput (how fast the simulator runs
/// a full produce/compute/consume cycle, not the virtual time it reports).
fn bench_end_to_end(c: &mut Criterion) {
    use gmac::Param;
    use hetsim::LaunchDims;
    use std::sync::Arc;
    use workloads::vecadd::VecAddKernel;

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    g.bench_function("vecadd_256k_rolling", |b| {
        b.iter(|| {
            let platform = Platform::desktop_g280();
            platform.register_kernel(Arc::new(VecAddKernel));
            let ctx = Gmac::new(platform, GmacConfig::default()).session();
            let n = 256 * 1024usize;
            let a = ctx.alloc((n * 4) as u64).unwrap();
            let bb = ctx.alloc((n * 4) as u64).unwrap();
            let cc = ctx.alloc((n * 4) as u64).unwrap();
            ctx.store_slice(a, &vec![1.0f32; n]).unwrap();
            ctx.store_slice(bb, &vec![2.0f32; n]).unwrap();
            let params = [
                Param::Shared(a),
                Param::Shared(bb),
                Param::Shared(cc),
                Param::U64(n as u64),
            ];
            ctx.call("vecadd", LaunchDims::for_elements(n as u64, 256), &params)
                .unwrap();
            ctx.sync().unwrap();
            black_box(ctx.load_slice::<f32>(cc, n).unwrap());
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page_table,
    bench_block_lookup,
    bench_fault_path,
    bench_devmem,
    bench_dma,
    bench_end_to_end
);
criterion_main!(benches);
