//! The coalescing ablation the transfer engine was built for: on the
//! rolling-update stencil workload, enabling dirty-range coalescing must
//! issue strictly fewer DMA jobs, each carrying at least as many bytes,
//! while moving identical data — measured through the extended
//! `TransferLedger` (jobs, bytes, blocks per job).

use gmac::{GmacConfig, Protocol};
use hetsim::Direction;
use workloads::stencil3d::Stencil3d;
use workloads::{run_variant_with, RunResult, Variant};

fn run_stencil(coalescing: bool) -> RunResult {
    let w = Stencil3d {
        n: 48,
        steps: 6,
        dump_every: 3,
    };
    let cfg = GmacConfig::default()
        .block_size(64 * 1024)
        .coalescing(coalescing);
    run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).expect("stencil run")
}

#[test]
fn coalescing_issues_fewer_larger_jobs_on_rolling_stencil() {
    let on = run_stencil(true);
    let off = run_stencil(false);

    // Identical output and identical bytes moved: coalescing changes the
    // *shape* of the traffic, never the data.
    assert_eq!(on.digest, off.digest, "coalescing must not change results");
    assert_eq!(on.transfers.h2d_bytes, off.transfers.h2d_bytes);
    assert_eq!(on.transfers.d2h_bytes, off.transfers.d2h_bytes);

    // Strictly fewer DMA jobs...
    assert!(
        on.transfers.total_jobs() < off.transfers.total_jobs(),
        "coalescing on: {} jobs, off: {} jobs",
        on.transfers.total_jobs(),
        off.transfers.total_jobs()
    );
    // ...each carrying at least as many bytes, in both directions.
    for dir in [Direction::HostToDevice, Direction::DeviceToHost] {
        assert!(
            on.transfers.bytes_per_job(dir) >= off.transfers.bytes_per_job(dir),
            "{dir}: on {} B/job, off {} B/job",
            on.transfers.bytes_per_job(dir),
            off.transfers.bytes_per_job(dir)
        );
    }

    // The block-per-job ratio is the direct witness of merged ranges: the
    // dump-path fetch of the whole volume is runs of adjacent invalid
    // blocks.
    assert!(
        on.transfers.coalescing_ratio(Direction::DeviceToHost) > 1.0,
        "d2h coalescing ratio {}",
        on.transfers.coalescing_ratio(Direction::DeviceToHost)
    );
    assert!(
        (off.transfers.coalescing_ratio(Direction::DeviceToHost) - 1.0).abs() < 1e-12,
        "ablation baseline is one block per job"
    );

    // Fewer per-job link latencies make the hot path measurably faster.
    assert!(
        on.elapsed < off.elapsed,
        "coalescing on: {}, off: {}",
        on.elapsed,
        off.elapsed
    );
}

#[test]
fn block_counters_count_blocks_not_calls() {
    // A coalesced run still reports every protocol block it carried: the
    // planner must not let batching under-report the traffic counters.
    let on = run_stencil(true);
    let off = run_stencil(false);
    let on_counters = on.counters.expect("gmac run");
    let off_counters = off.counters.expect("gmac run");
    assert_eq!(on_counters.blocks_fetched, off_counters.blocks_fetched);
    assert_eq!(on_counters.blocks_flushed, off_counters.blocks_flushed);
    assert_eq!(on_counters.bytes_fetched, off_counters.bytes_fetched);
    assert_eq!(on_counters.bytes_flushed, off_counters.bytes_flushed);
    // And the ledger's block tally matches the runtime's counters.
    assert_eq!(
        on.transfers.h2d_blocks + on.transfers.d2h_blocks,
        on_counters.blocks_flushed + on_counters.blocks_fetched
    );
}
