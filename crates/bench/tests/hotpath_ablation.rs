//! The access-fast-path ablation the TLB was built for: with
//! `GmacConfig::tlb(false)` every access pays the full radix walk, manager
//! search and registry route; with the fast path on those are cached. The
//! two modes must be **byte-identical** in everything the simulation
//! observes — output digests, virtual times, per-category ledgers, fault
//! counts and transfer traffic — across all nine workloads; only wall-clock
//! time may differ, and the release-mode scalar-loop microbench must show
//! the fast path at least 1.5x faster.

use gmac::{GmacConfig, Protocol};
use gmac_bench::hotpath::{best_of, scalar_loop, Scale};
use hetsim::Category;
use workloads::stencil3d::Stencil3d;
use workloads::vecadd::VecAdd;
use workloads::{parboil_suite_small, run_variant_with, RunResult, Variant, Workload};

/// The nine workloads: the seven Parboil applications plus the two
/// micro-benchmarks (§5.1/§5.2).
fn nine_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = parboil_suite_small();
    all.push(Box::new(VecAdd::small()));
    all.push(Box::new(Stencil3d::small()));
    all
}

fn run(w: &dyn Workload, tlb: bool) -> RunResult {
    let cfg = GmacConfig::default().tlb(tlb);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("workload run")
}

#[test]
fn tlb_modes_are_byte_identical_on_all_nine_workloads() {
    for w in nine_workloads() {
        let on = run(w.as_ref(), true);
        let off = run(w.as_ref(), false);
        let name = w.name();
        assert_eq!(on.digest, off.digest, "{name}: digest");
        assert_eq!(on.elapsed, off.elapsed, "{name}: virtual time");
        assert_eq!(
            on.ledger.total(),
            off.ledger.total(),
            "{name}: ledger total"
        );
        for cat in Category::ALL {
            assert_eq!(
                on.ledger.get(cat),
                off.ledger.get(cat),
                "{name}: ledger category {cat}"
            );
        }
        let (onc, offc) = (on.counters.unwrap(), off.counters.unwrap());
        assert_eq!(onc.faults_read, offc.faults_read, "{name}: read faults");
        assert_eq!(onc.faults_write, offc.faults_write, "{name}: write faults");
        assert_eq!(onc.blocks_fetched, offc.blocks_fetched, "{name}");
        assert_eq!(onc.blocks_flushed, offc.blocks_flushed, "{name}");
        assert_eq!(on.transfers.h2d_bytes, off.transfers.h2d_bytes, "{name}");
        assert_eq!(on.transfers.d2h_bytes, off.transfers.d2h_bytes, "{name}");
        assert_eq!(
            on.transfers.total_jobs(),
            off.transfers.total_jobs(),
            "{name}: job shape"
        );
        // The fast path actually engaged (TLB exercised) in on-mode and
        // stayed cold in off-mode.
        assert!(onc.tlb_hits > 0, "{name}: fast path engaged");
        assert_eq!(offc.tlb_hits + offc.tlb_misses, 0, "{name}: ablation cold");
        assert_eq!(offc.obj_memo_hits, 0, "{name}: memo disabled");
    }
}

#[test]
fn scalar_loop_speedup_with_tlb_on() {
    // Wall-clock assertion: only meaningful with optimizations (mirrors the
    // contention benchmark's release gate) — debug tier-1 CI must not flake
    // on timing.
    if cfg!(debug_assertions) {
        eprintln!("skipping wall-clock speedup assertion in debug build");
        return;
    }
    let scale = Scale::full();
    // Warm-up, then best-of-3 per mode (minimum-noise estimator: scheduler
    // preemption and cache pollution only ever add time).
    scalar_loop(true, Scale::quick());
    scalar_loop(false, Scale::quick());
    let on = best_of(3, || scalar_loop(true, scale));
    let off = best_of(3, || scalar_loop(false, scale));
    let speedup = off.ns_per_op() / on.ns_per_op();
    assert!(
        speedup >= 1.5,
        "scalar loop: tlb on {:.1} ns/op vs off {:.1} ns/op = {speedup:.2}x (need >= 1.5x)",
        on.ns_per_op(),
        off.ns_per_op()
    );
}
