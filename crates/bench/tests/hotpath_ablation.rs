//! The access-fast-path ablation the TLB was built for: with
//! `GmacConfig::tlb(false)` every access pays the full radix walk, manager
//! search and registry route; with the fast path on those are cached. The
//! two modes must be **byte-identical** in everything the simulation
//! observes — output digests, virtual times, per-category ledgers, fault
//! counts and transfer traffic — across all nine workloads; only wall-clock
//! time may differ. In release mode the microbenchmarks must show the
//! software fast path at least 1.5x faster than the baseline, the
//! mmap-backed scalar hit path at least **10x** faster, and the mmap slice
//! path at least 1.5x faster (the ISSUE acceptance thresholds).

use gmac::{GmacConfig, Protocol};
use gmac_bench::hotpath::{best_of, scalar_loop, slice, Mode, Scale};
use hetsim::Category;
use workloads::stencil3d::Stencil3d;
use workloads::vecadd::VecAdd;
use workloads::{parboil_suite_small, run_variant_with, RunResult, Variant, Workload};

/// The nine workloads: the seven Parboil applications plus the two
/// micro-benchmarks (§5.1/§5.2).
fn nine_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = parboil_suite_small();
    all.push(Box::new(VecAdd::small()));
    all.push(Box::new(Stencil3d::small()));
    all
}

fn run(w: &dyn Workload, tlb: bool) -> RunResult {
    // Pinned to the frame-arena backend: this test isolates the *tlb*
    // toggle, and its engagement assertions read the TLB hit counters —
    // which are wall-clock-only bookkeeping that legitimately stays at
    // zero on the mmap backend (accessible spans collapse to memcpys that
    // never probe the software TLB). The backing toggle has its own
    // byte-identity test in the core crate (`mmap_backing.rs`).
    let cfg = GmacConfig::default().mmap_backing(false).tlb(tlb);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("workload run")
}

#[test]
fn tlb_modes_are_byte_identical_on_all_nine_workloads() {
    let mut suite_hits = 0u64;
    for w in nine_workloads() {
        let on = run(w.as_ref(), true);
        let off = run(w.as_ref(), false);
        let name = w.name();
        assert_eq!(on.digest, off.digest, "{name}: digest");
        assert_eq!(on.elapsed, off.elapsed, "{name}: virtual time");
        assert_eq!(
            on.ledger.total(),
            off.ledger.total(),
            "{name}: ledger total"
        );
        for cat in Category::ALL {
            assert_eq!(
                on.ledger.get(cat),
                off.ledger.get(cat),
                "{name}: ledger category {cat}"
            );
        }
        let (onc, offc) = (on.counters.unwrap(), off.counters.unwrap());
        assert_eq!(onc.faults_read, offc.faults_read, "{name}: read faults");
        assert_eq!(onc.faults_write, offc.faults_write, "{name}: write faults");
        assert_eq!(onc.blocks_fetched, offc.blocks_fetched, "{name}");
        assert_eq!(onc.blocks_flushed, offc.blocks_flushed, "{name}");
        assert_eq!(on.transfers.h2d_bytes, off.transfers.h2d_bytes, "{name}");
        assert_eq!(on.transfers.d2h_bytes, off.transfers.d2h_bytes, "{name}");
        assert_eq!(
            on.transfers.total_jobs(),
            off.transfers.total_jobs(),
            "{name}: job shape"
        );
        // The fast path actually engaged (translation went through the
        // TLB) in on-mode and stayed cold in off-mode. Pure-bulk workloads
        // probe each page once per generation (raw copies don't re-probe),
        // so per-workload we assert the TLB is on the path; actual caching
        // (hits) is asserted across the suite below.
        assert!(
            onc.tlb_hits + onc.tlb_misses > 0,
            "{name}: fast path engaged"
        );
        suite_hits += onc.tlb_hits;
        assert_eq!(offc.tlb_hits + offc.tlb_misses, 0, "{name}: ablation cold");
        assert_eq!(offc.obj_memo_hits, 0, "{name}: memo disabled");
    }
    assert!(suite_hits > 0, "cached translations observed in the suite");
}

/// Wall-clock assertions are only meaningful with optimizations (mirrors
/// the contention benchmark's release gate) — debug tier-1 CI must not
/// flake on timing.
fn wall_clock_gated() -> bool {
    if cfg!(debug_assertions) {
        eprintln!("skipping wall-clock speedup assertion in debug build");
        return false;
    }
    true
}

#[test]
fn scalar_loop_speedup_with_tlb_on() {
    if !wall_clock_gated() {
        return;
    }
    let scale = Scale::full();
    // Warm-up, then best-of-3 per mode (minimum-noise estimator: scheduler
    // preemption and cache pollution only ever add time).
    scalar_loop(Mode::TableWalk, Scale::quick());
    scalar_loop(Mode::Baseline, Scale::quick());
    let on = best_of(3, || scalar_loop(Mode::TableWalk, scale));
    let off = best_of(3, || scalar_loop(Mode::Baseline, scale));
    let speedup = off.ns_per_op() / on.ns_per_op();
    assert!(
        speedup >= 1.5,
        "scalar loop: tlb on {:.1} ns/op vs off {:.1} ns/op = {speedup:.2}x (need >= 1.5x)",
        on.ns_per_op(),
        off.ns_per_op()
    );
}

/// The tentpole's headline: with the mmap backing, a warm scalar access is
/// a raw host load/store — at least 10x faster than the fully instrumented
/// baseline (ISSUE acceptance threshold).
#[cfg(target_os = "linux")]
#[test]
fn scalar_loop_speedup_with_mmap_backing() {
    if !wall_clock_gated() {
        return;
    }
    let scale = Scale::full();
    scalar_loop(Mode::Mmap, Scale::quick());
    scalar_loop(Mode::Baseline, Scale::quick());
    let mmap = best_of(3, || scalar_loop(Mode::Mmap, scale));
    let off = best_of(3, || scalar_loop(Mode::Baseline, scale));
    let speedup = off.ns_per_op() / mmap.ns_per_op();
    assert!(
        speedup >= 10.0,
        "scalar loop: mmap {:.1} ns/op vs baseline {:.1} ns/op = {speedup:.2}x (need >= 10x)",
        mmap.ns_per_op(),
        off.ns_per_op()
    );
}

/// Bulk slices on the mmap backing collapse accessible spans to single
/// memcpys against the real mapping. The acceptance threshold is an
/// **improvement ≥ 1.5x over the pre-mmap trajectory point** (the seed
/// `results/BENCH_hotpath.json` recorded 7.31 ms/op with the fast path
/// on): the slice scenario is dominated by the rolling protocol's
/// eviction bookkeeping, which is *identical across backings by design*
/// (byte-identical virtual time), so the in-run baseline — itself sped up
/// by this change's bulk-path work — is not the reference. The in-run
/// sanity bound below only guards against the mmap path regressing behind
/// the instrumented walk it replaces.
#[cfg(target_os = "linux")]
#[test]
fn slice_speedup_with_mmap_backing() {
    if !wall_clock_gated() {
        return;
    }
    const SEED_NS_PER_OP: f64 = 7_312_679.75; // full-scale, pre-mmap seed
    let scale = Scale::full();
    slice(Mode::Mmap, Scale::quick());
    slice(Mode::Baseline, Scale::quick());
    let mmap = best_of(3, || slice(Mode::Mmap, scale));
    let off = best_of(3, || slice(Mode::Baseline, scale));
    let vs_seed = SEED_NS_PER_OP / mmap.ns_per_op();
    assert!(
        vs_seed >= 1.5,
        "slice: mmap {:.3} ms/op vs seed {:.3} ms/op = {vs_seed:.2}x (need >= 1.5x)",
        mmap.ns_per_op() / 1e6,
        SEED_NS_PER_OP / 1e6
    );
    // Noise-tolerant bound: both modes are dominated by identical protocol
    // work and land within scheduler jitter of each other on a loaded
    // 1-core host, so only a real regression (e.g. per-block syscalls
    // creeping back onto an unarmed path) trips this.
    let vs_baseline = off.ns_per_op() / mmap.ns_per_op();
    assert!(
        vs_baseline >= 0.8,
        "slice: mmap {:.3} ms/op trails the instrumented baseline {:.3} ms/op by more than noise",
        mmap.ns_per_op() / 1e6,
        off.ns_per_op() / 1e6
    );
}
