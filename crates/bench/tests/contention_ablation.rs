//! The sharding ablation the runtime split was built for (acceptance
//! criteria of the shard redesign):
//!
//! * 2 sessions × 2 devices complete a fixed vecadd workload in ≥ 1.5× less
//!   wall-clock time under per-device shard locks than under the global-lock
//!   mode, with identical output digests;
//! * single-session results are byte-identical between modes (same digest,
//!   same virtual elapsed time) — the lock layout must never leak into
//!   simulation results.

use gmac_bench::contention::{run_mode, run_single};

const N: usize = 1 << 20; // 4 MiB per buffer, 3 buffers per device round
const REPS: usize = 4;

#[test]
fn single_session_results_are_byte_identical_between_modes() {
    let sharded = run_single(true, 64 * 1024, 2);
    let global = run_single(false, 64 * 1024, 2);
    assert_eq!(
        sharded, global,
        "digest and virtual time must match exactly"
    );
}

#[test]
fn sharding_beats_global_lock_by_1_5x_wall_clock_with_identical_digests() {
    // Warm-up outside the measurement (allocator, frames, thread spawn).
    run_mode(true, 2, 64 * 1024, 1);

    // Unoptimized codegen amplifies scheduler noise; the digest checks run
    // everywhere, but the wall-clock claim is only asserted in release
    // builds (the CI `test-release` job) where timing is meaningful.
    let assert_timing = !cfg!(debug_assertions);

    let sharded = run_mode(true, 2, N, REPS);
    let global = run_mode(false, 2, N, REPS);

    // Correctness first: the lock mode must never change the data.
    assert_eq!(
        sharded.digests, global.digests,
        "identical output digests between lock modes"
    );
    assert_eq!(sharded.digests.len(), 2);
    assert_ne!(
        sharded.digests[0], sharded.digests[1],
        "per-device inputs differ, so digests must too"
    );

    // The wall-clock claim needs at least two hardware threads to be
    // meaningful; on a single-core runner the modes legitimately tie.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if !assert_timing || cores < 2 {
        eprintln!(
            "skipping wall-clock assertion (debug_assertions={}, {cores} core(s) available)",
            cfg!(debug_assertions)
        );
        return;
    }

    let speedup = global.wall_secs / sharded.wall_secs;
    assert!(
        speedup >= 1.5,
        "sharded mode must be >= 1.5x faster in wall-clock terms: \
         sharded {:.1} ms vs global {:.1} ms ({speedup:.2}x)",
        sharded.wall_secs * 1e3,
        global.wall_secs * 1e3,
    );
}
