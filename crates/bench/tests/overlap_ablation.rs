//! The wall-clock half of the async-DMA ablation contract (the virtual-time
//! half — byte-identical digests, ledgers and fault counts across the
//! toggle — lives in the core crate's `async_dma` integration test).
//!
//! Digest equality across modes is asserted unconditionally; the overlap
//! *ratio* assertion needs optimized code and a second core to park the
//! worker on, so it is gated like the other wall-clock benchmarks.

use gmac_bench::overlap::{best_of, run_all, write_stream, Scale};

#[test]
fn overlap_modes_produce_identical_bytes() {
    // run_all asserts digest equality internally for every scenario.
    let results = run_all(Scale::quick());
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(r.async_on.wall_ns > 0 && r.async_off.wall_ns > 0, "timed");
        assert_eq!(
            r.async_off.jobs_overlapped, 0,
            "{}: inline mode must never overlap",
            r.name
        );
    }
}

#[test]
fn write_stream_overlap_beats_serial_with_two_cores() {
    // Wall-clock assertion: only meaningful with optimizations and a core
    // for the worker thread — debug or single-core CI must not flake.
    if cfg!(debug_assertions) {
        eprintln!("skipping wall-clock overlap assertion in debug build");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 2 {
        eprintln!("skipping wall-clock overlap assertion on a single core");
        return;
    }
    let scale = Scale::full();
    // Warm-up, then best-of-3 per mode.
    write_stream(true, Scale::quick());
    write_stream(false, Scale::quick());
    let on = best_of(3, || write_stream(true, scale));
    let off = best_of(3, || write_stream(false, scale));
    let ratio = on.wall_ns as f64 / off.wall_ns as f64;
    assert!(
        ratio <= 0.75,
        "streaming wall-clock must approach max(compute, transfer): \
         on {} ns vs off {} ns = {ratio:.3} (need <= 0.75)",
        on.wall_ns,
        off.wall_ns
    );
    assert!(
        on.jobs_overlapped > 0,
        "the engine actually overlapped jobs"
    );
}
