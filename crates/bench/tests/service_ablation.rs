//! The wall-clock half of the service-layer contract (the virtual-time
//! half — byte-identical digests and per-category ledgers across
//! queued / inline / direct execution — lives in the core crate's `service`
//! integration test).
//!
//! Completion accounting is asserted unconditionally; the absolute
//! throughput assertion needs optimized code and a second core for the
//! device worker, so it is gated like the other wall-clock benchmarks.

use gmac_bench::service::{run_point, Scale};

#[test]
fn every_submitted_job_completes_with_sane_latencies() {
    let scale = Scale {
        session_counts: &[64],
        jobs_per_session: 2,
        queue_depth: 32,
    };
    let p = run_point(64, scale);
    assert_eq!(p.jobs, 64 * 2, "every job completed exactly once");
    assert!(p.wall_ns > 0, "timed");
    assert!(p.p50_ns > 0 && p.p50_ns <= p.p99_ns, "percentiles ordered");
    assert!(p.jobs_per_sec > 0.0);
}

#[test]
fn admission_backpressure_is_survivable() {
    // A queue far smaller than the client count forces rejections; the
    // retry-after hint must carry every client through to completion.
    let scale = Scale {
        session_counts: &[128],
        jobs_per_session: 2,
        queue_depth: 4,
    };
    let p = run_point(128, scale);
    assert_eq!(p.jobs, 128 * 2, "back-pressure never lost a job");
}

#[test]
fn service_sustains_throughput_with_two_cores() {
    // Wall-clock assertion: only meaningful with optimizations and a core
    // for the device worker — debug or single-core CI must not flake.
    if cfg!(debug_assertions) {
        eprintln!("skipping wall-clock service throughput assertion in debug build");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 2 {
        eprintln!("skipping wall-clock service throughput assertion on a single core");
        return;
    }
    let scale = Scale::quick();
    // Warm-up, then measure the 100-session point.
    run_point(32, scale);
    let p = run_point(100, scale);
    assert!(
        p.jobs_per_sec >= 1_000.0,
        "100 sessions over one device should clear >= 1k small jobs/sec, got {:.0}",
        p.jobs_per_sec
    );
    assert!(p.p99_ns >= p.p50_ns, "latency distribution must be ordered");
}
