//! Property tests: the radix page table and the address space agree with
//! simple reference models under arbitrary operation sequences.

use proptest::prelude::*;
use softmmu::table::{PageTable, Pte};
use softmmu::{AccessKind, AddressSpace, MmuError, Protection, VAddr, VPage, PAGE_SIZE};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum TableOp {
    Map(u64, Protection),
    Unmap(u64),
    Protect(u64, Protection),
    Lookup(u64),
}

fn prot_strategy() -> impl Strategy<Value = Protection> {
    prop_oneof![
        Just(Protection::None),
        Just(Protection::ReadOnly),
        Just(Protection::ReadWrite),
    ]
}

fn table_op() -> impl Strategy<Value = TableOp> {
    // Confine pages to a small set so operations collide often.
    let page = 0u64..64;
    prop_oneof![
        (page.clone(), prot_strategy()).prop_map(|(p, pr)| TableOp::Map(p, pr)),
        page.clone().prop_map(TableOp::Unmap),
        (page.clone(), prot_strategy()).prop_map(|(p, pr)| TableOp::Protect(p, pr)),
        page.prop_map(TableOp::Lookup),
    ]
}

proptest! {
    /// The radix page table behaves exactly like a HashMap<page, pte>.
    #[test]
    fn page_table_matches_hashmap_model(ops in proptest::collection::vec(table_op(), 1..200)) {
        let mut table = PageTable::new();
        let mut model: HashMap<u64, Pte> = HashMap::new();
        let mut arena = softmmu::frame::FrameArena::new();

        for op in ops {
            match op {
                TableOp::Map(p, prot) => {
                    let pte = Pte { frame: arena.alloc(), prot, region: softmmu::RegionId(p) };
                    let got = table.map(VPage(p), pte);
                    let want = model.insert(p, pte);
                    prop_assert_eq!(got, want);
                }
                TableOp::Unmap(p) => {
                    prop_assert_eq!(table.unmap(VPage(p)), model.remove(&p));
                }
                TableOp::Protect(p, prot) => {
                    let got = table.protect(VPage(p), prot);
                    let want = model.get_mut(&p).map(|e| {
                        let old = e.prot;
                        e.prot = prot;
                        old
                    });
                    prop_assert_eq!(got, want);
                }
                TableOp::Lookup(p) => {
                    prop_assert_eq!(table.lookup(VPage(p)).copied(), model.get(&p).copied());
                }
            }
            prop_assert_eq!(table.mapped_pages(), model.len() as u64);
        }
    }

    /// Checked byte access agrees with a flat reference buffer, and never
    /// succeeds where protection forbids it.
    #[test]
    fn address_space_matches_flat_buffer(
        writes in proptest::collection::vec((0u64..16384, proptest::collection::vec(any::<u8>(), 1..128)), 1..40),
        ro_page in 0u64..4,
    ) {
        let mut vm = AddressSpace::new();
        let base = VAddr(0x2_0000_0000);
        vm.map_fixed(base, 4 * PAGE_SIZE, Protection::ReadWrite).unwrap();
        let mut reference = vec![0u8; 4 * PAGE_SIZE as usize];

        // One page is read-only; writes touching it must fail atomically.
        let ro_start = ro_page * PAGE_SIZE;
        vm.protect(base + ro_start, PAGE_SIZE, Protection::ReadOnly).unwrap();

        for (off, data) in writes {
            let off = off.min(4 * PAGE_SIZE - data.len() as u64);
            let touches_ro = off < ro_start + PAGE_SIZE && off + data.len() as u64 > ro_start;
            let res = vm.write_bytes(base + off, &data);
            if touches_ro {
                prop_assert!(matches!(res, Err(MmuError::Fault(f)) if f.kind == AccessKind::Write));
            } else {
                prop_assert!(res.is_ok());
                reference[off as usize..off as usize + data.len()].copy_from_slice(&data);
            }
        }

        // Full readback (reads allowed everywhere) matches the reference.
        let mut out = vec![0u8; 4 * PAGE_SIZE as usize];
        vm.read_bytes(base, &mut out).unwrap();
        prop_assert_eq!(out, reference);
    }

    /// map_anywhere never hands out overlapping regions.
    #[test]
    fn map_anywhere_regions_disjoint(lens in proptest::collection::vec(1u64..100_000, 1..20)) {
        let mut vm = AddressSpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for len in lens {
            let (_, addr) = vm.map_anywhere(len, Protection::ReadWrite).unwrap();
            let end = addr.0 + VAddr(len).page_up().0;
            for &(s, e) in &ranges {
                prop_assert!(end <= s || addr.0 >= e, "regions overlap");
            }
            ranges.push((addr.0, end));
        }
    }
}
