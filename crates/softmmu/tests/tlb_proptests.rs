//! TLB-equivalence property tests: an [`AddressSpace`] with the software
//! TLB enabled must be observationally identical to one with it disabled
//! under arbitrary map / protect / access / unmap sequences — same data,
//! same errors, same fault counts. In particular a stale TLB entry after an
//! `mprotect` downgrade must still fault (the generation-counter invariant).

use proptest::prelude::*;
use softmmu::{AddressSpace, MmuError, Protection, VAddr, PAGE_SIZE};

const BASE: u64 = 0x2_0000_0000;
const PAGES: u64 = 8;

/// One step of the mirrored workload. Offsets are confined to a small
/// 8-page window so protects, accesses and remaps collide constantly.
#[derive(Debug, Clone)]
enum Op {
    /// Map `pages` pages at page index `page` (may overlap -> error).
    Map(u64, u64, Protection),
    /// Unmap the region containing page `page`, if any.
    Unmap(u64),
    /// mprotect one page.
    Protect(u64, Protection),
    /// Checked write of `len` bytes at `off`.
    Write(u64, u8, u64),
    /// Checked read of `len` bytes at `off`.
    Read(u64, u64),
    /// Typed store + load roundtrip at `off`.
    Scalar(u64, u32),
    /// Raw (kernel-mode) read at `off`.
    RawRead(u64, u64),
    /// Checked fill.
    Fill(u64, u8, u64),
}

fn prot_strategy() -> impl Strategy<Value = Protection> {
    prop_oneof![
        Just(Protection::None),
        Just(Protection::ReadOnly),
        Just(Protection::ReadWrite),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let page = 0u64..PAGES;
    let off = 0u64..PAGES * PAGE_SIZE - 64;
    prop_oneof![
        (page.clone(), 1u64..4, prot_strategy()).prop_map(|(p, n, pr)| Op::Map(p, n, pr)),
        page.clone().prop_map(Op::Unmap),
        (page, prot_strategy()).prop_map(|(p, pr)| Op::Protect(p, pr)),
        (off.clone(), any::<u8>(), 1u64..64).prop_map(|(o, v, n)| Op::Write(o, v, n)),
        (off.clone(), 1u64..64).prop_map(|(o, n)| Op::Read(o, n)),
        (off.clone(), any::<u32>()).prop_map(|(o, v)| Op::Scalar(o, v)),
        (off.clone(), 1u64..64).prop_map(|(o, n)| Op::RawRead(o, n)),
        (off, any::<u8>(), 1u64..64).prop_map(|(o, v, n)| Op::Fill(o, v, n)),
    ]
}

/// Collapses an operation result to a comparable token (error *kind* plus
/// any bytes produced).
fn token(res: Result<Vec<u8>, MmuError>) -> (u8, Vec<u8>) {
    match res {
        Ok(bytes) => (0, bytes),
        Err(MmuError::Fault(f)) => (1, f.addr.0.to_le_bytes().to_vec()),
        Err(MmuError::Unmapped(a)) => (2, a.0.to_le_bytes().to_vec()),
        Err(MmuError::Overlap { addr, len }) => {
            let mut v = addr.0.to_le_bytes().to_vec();
            v.extend_from_slice(&len.to_le_bytes());
            (3, v)
        }
        Err(_) => (4, Vec::new()),
    }
}

fn apply(vm: &mut AddressSpace, op: &Op) -> (u8, Vec<u8>) {
    match *op {
        Op::Map(page, pages, prot) => token(
            vm.map_fixed(VAddr(BASE + page * PAGE_SIZE), pages * PAGE_SIZE, prot)
                .map(|id| id.0.to_le_bytes().to_vec()),
        ),
        Op::Unmap(page) => {
            let id = vm.region_at(VAddr(BASE + page * PAGE_SIZE)).map(|r| r.id);
            match id {
                Some(id) => token(vm.unmap_region(id).map(|()| Vec::new())),
                None => (9, Vec::new()),
            }
        }
        Op::Protect(page, prot) => token(
            vm.protect(VAddr(BASE + page * PAGE_SIZE), PAGE_SIZE, prot)
                .map(|()| Vec::new()),
        ),
        Op::Write(off, value, len) => token(
            vm.write_bytes(VAddr(BASE + off), &vec![value; len as usize])
                .map(|()| Vec::new()),
        ),
        Op::Read(off, len) => {
            let mut buf = vec![0u8; len as usize];
            token(vm.read_bytes(VAddr(BASE + off), &mut buf).map(|()| buf))
        }
        Op::Scalar(off, value) => {
            let stored = vm.store::<u32>(VAddr(BASE + off), value);
            let loaded = vm.load::<u32>(VAddr(BASE + off));
            token(stored.and(loaded).map(|v: u32| v.to_le_bytes().to_vec()))
        }
        Op::RawRead(off, len) => {
            let mut buf = vec![0u8; len as usize];
            token(vm.read_raw(VAddr(BASE + off), &mut buf).map(|()| buf))
        }
        Op::Fill(off, value, len) => {
            token(vm.fill(VAddr(BASE + off), value, len).map(|()| Vec::new()))
        }
    }
}

proptest! {
    /// The full observable behaviour — data, error kinds, fault counts and
    /// region bookkeeping — matches between TLB-on and TLB-off across random
    /// operation sequences.
    #[test]
    fn tlb_on_and_off_are_observationally_identical(
        ops in proptest::collection::vec(op_strategy(), 1..150),
    ) {
        let mut with_tlb = AddressSpace::new();
        let mut without_tlb = AddressSpace::new();
        without_tlb.set_tlb_enabled(false);

        for op in &ops {
            let a = apply(&mut with_tlb, op);
            let b = apply(&mut without_tlb, op);
            prop_assert_eq!(a, b, "divergence on {:?}", op);
            prop_assert_eq!(with_tlb.faults_observed(), without_tlb.faults_observed());
            prop_assert_eq!(with_tlb.mapped_pages(), without_tlb.mapped_pages());
            prop_assert_eq!(with_tlb.region_count(), without_tlb.region_count());
        }

        // Final full readback of every mapped page agrees byte for byte.
        for page in 0..PAGES {
            let addr = VAddr(BASE + page * PAGE_SIZE);
            let a = with_tlb.protection_at(addr).is_some();
            let b = without_tlb.protection_at(addr).is_some();
            prop_assert_eq!(a, b);
            if a {
                let mut x = vec![0u8; PAGE_SIZE as usize];
                let mut y = vec![0u8; PAGE_SIZE as usize];
                with_tlb.read_raw(addr, &mut x).unwrap();
                without_tlb.read_raw(addr, &mut y).unwrap();
                prop_assert_eq!(x, y, "page {} bytes diverged", page);
            }
        }
    }
}
