//! Observational equivalence of the two byte-storage backends.
//!
//! The same operation sequence applied to a table-walk space and an
//! mmap-backed space must produce identical observable behaviour: the same
//! data, the same errors (faults, unmapped holes, overlaps), the same fault
//! counts and region bookkeeping. Only wall-clock time may differ.
#![cfg(target_os = "linux")]

use proptest::prelude::*;
use softmmu::{AddressSpace, Protection, RegionId, VAddr, PAGE_SIZE};

const BASE: u64 = 0x2_0000_0000;
/// The op window: 32 pages starting at `BASE`.
const WINDOW: u64 = 32 * PAGE_SIZE;

fn mmap_space() -> Option<AddressSpace> {
    AddressSpace::new_mmap(8 << 30).ok()
}

fn prot_of(p: u8) -> Protection {
    match p % 3 {
        0 => Protection::None,
        1 => Protection::ReadOnly,
        _ => Protection::ReadWrite,
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Map { page: u8, pages: u8, prot: u8 },
    Unmap { idx: u8 },
    Protect { page: u8, pages: u8, prot: u8 },
    Write { off: u32, len: u8, seed: u8 },
    Read { off: u32, len: u8 },
    Fill { off: u32, len: u8, value: u8 },
    Store { off: u32, value: u32 },
    Load { off: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32, 1u8..8, any::<u8>()).prop_map(|(page, pages, prot)| Op::Map {
            page,
            pages,
            prot
        }),
        any::<u8>().prop_map(|idx| Op::Unmap { idx }),
        (0u8..32, 1u8..8, any::<u8>()).prop_map(|(page, pages, prot)| Op::Protect {
            page,
            pages,
            prot
        }),
        (0u32..WINDOW as u32, any::<u8>(), any::<u8>()).prop_map(|(off, len, seed)| Op::Write {
            off,
            len,
            seed
        }),
        (0u32..WINDOW as u32, any::<u8>()).prop_map(|(off, len)| Op::Read { off, len }),
        (0u32..WINDOW as u32, any::<u8>(), any::<u8>()).prop_map(|(off, len, value)| Op::Fill {
            off,
            len,
            value
        }),
        (0u32..WINDOW as u32, any::<u32>()).prop_map(|(off, value)| Op::Store { off, value }),
        (0u32..WINDOW as u32).prop_map(|off| Op::Load { off }),
    ]
}

/// Runs the ops, recording every observable outcome as a string.
fn apply(vm: &mut AddressSpace, ops: &[Op]) -> Vec<String> {
    let mut log = Vec::new();
    let mut regions: Vec<RegionId> = Vec::new();
    for op in ops {
        match *op {
            Op::Map { page, pages, prot } => {
                let addr = VAddr(BASE + u64::from(page) * PAGE_SIZE);
                match vm.map_fixed(addr, u64::from(pages) * PAGE_SIZE, prot_of(prot)) {
                    Ok(id) => {
                        regions.push(id);
                        log.push("map ok".into());
                    }
                    Err(e) => log.push(format!("map err: {e}")),
                }
            }
            Op::Unmap { idx } => {
                if regions.is_empty() {
                    log.push("unmap none".into());
                } else {
                    let id = regions.remove(usize::from(idx) % regions.len());
                    log.push(format!(
                        "unmap: {:?}",
                        vm.unmap_region(id).map_err(|e| e.to_string())
                    ));
                }
            }
            Op::Protect { page, pages, prot } => {
                let addr = VAddr(BASE + u64::from(page) * PAGE_SIZE);
                let r = vm.protect(addr, u64::from(pages) * PAGE_SIZE, prot_of(prot));
                log.push(format!("protect: {:?}", r.map_err(|e| e.to_string())));
            }
            Op::Write { off, len, seed } => {
                let data: Vec<u8> = (0..len)
                    .map(|i| i.wrapping_mul(31).wrapping_add(seed))
                    .collect();
                let r = vm.write_bytes(VAddr(BASE + u64::from(off)), &data);
                log.push(format!("write: {:?}", r.map_err(|e| e.to_string())));
            }
            Op::Read { off, len } => {
                let mut buf = vec![0u8; usize::from(len)];
                match vm.read_bytes(VAddr(BASE + u64::from(off)), &mut buf) {
                    Ok(()) => log.push(format!("read: {buf:?}")),
                    Err(e) => log.push(format!("read err: {e}")),
                }
            }
            Op::Fill { off, len, value } => {
                let r = vm.fill(VAddr(BASE + u64::from(off)), value, u64::from(len));
                log.push(format!("fill: {:?}", r.map_err(|e| e.to_string())));
            }
            Op::Store { off, value } => {
                let r = vm.store::<u32>(VAddr(BASE + u64::from(off)), value);
                log.push(format!("store: {:?}", r.map_err(|e| e.to_string())));
            }
            Op::Load { off } => {
                let r = vm.load::<u32>(VAddr(BASE + u64::from(off)));
                log.push(format!("load: {:?}", r.map_err(|e| e.to_string())));
            }
        }
    }
    log.push(format!(
        "end: faults={} regions={} pages={}",
        vm.faults_observed(),
        vm.region_count(),
        vm.mapped_pages()
    ));
    log
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn backends_are_observationally_equivalent(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let Some(mut mmap) = mmap_space() else { return Ok(()) };
        let mut arena = AddressSpace::new();
        prop_assert_eq!(apply(&mut arena, &ops), apply(&mut mmap, &ops));
    }
}

/// After alloc/free churn, every VMA of the user view that is not part of a
/// live mapping must be back to `PROT_NONE` (the quarantine invariant), and
/// live mappings must carry their real protection.
#[test]
fn unmap_churn_quarantines_user_view() {
    let Some(mut vm) = mmap_space() else { return };
    let (base, len) = vm.host_reservation().unwrap();
    for i in 0..16u64 {
        let addr = VAddr(BASE + (i % 4) * 16 * PAGE_SIZE);
        let id = vm
            .map_fixed(addr, 8 * PAGE_SIZE, Protection::ReadWrite)
            .unwrap();
        vm.write_bytes(addr, &[0xAB; 4096]).unwrap();
        vm.unmap_region(id).unwrap();
    }
    // One live RW region so the scan is provably looking at the right
    // range. Real protection is materialized lazily — only once a
    // fast-path pointer escapes — so arm the region explicitly.
    vm.map_fixed(VAddr(BASE), 2 * PAGE_SIZE, Protection::ReadWrite)
        .unwrap();
    vm.fast_base(VAddr(BASE), 2 * PAGE_SIZE)
        .expect("live region arms");
    let end = base + len as usize;
    let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
    let mut saw_rw = false;
    let mut saw_any = false;
    for line in maps.lines() {
        let mut fields = line.split_whitespace();
        let range = fields.next().unwrap();
        let perms = fields.next().unwrap();
        let (lo, hi) = range.split_once('-').unwrap();
        let lo = usize::from_str_radix(lo, 16).unwrap();
        let hi = usize::from_str_radix(hi, 16).unwrap();
        if lo < base || hi > end {
            continue;
        }
        saw_any = true;
        if perms.starts_with("rw") {
            saw_rw = true;
        } else {
            assert!(
                perms.starts_with("---"),
                "user-view VMA {range} should be PROT_NONE after churn, got {perms}"
            );
        }
    }
    assert!(saw_any, "scan never found the user reservation");
    assert!(
        saw_rw,
        "the live region's pages should be rw in the user view"
    );
}
