//! Page protection modes and access kinds.
//!
//! The GMAC coherence protocols drive these exactly like `mprotect()` in the
//! paper (§4.3): *Invalid* blocks are mapped with [`Protection::None`] so any
//! access faults, *ReadOnly* blocks fault on write, *Dirty* blocks are
//! [`Protection::ReadWrite`].

use std::fmt;

/// What an access attempts to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Per-page permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// No access permitted (paper: invalid state — `PROT_NONE`).
    #[default]
    None,
    /// Loads permitted, stores fault (paper: read-only state — `PROT_READ`).
    ReadOnly,
    /// All access permitted (paper: dirty state — `PROT_READ|PROT_WRITE`).
    ReadWrite,
}

impl Protection {
    /// Whether this protection permits `kind`.
    pub fn allows(self, kind: AccessKind) -> bool {
        matches!(
            (self, kind),
            (Protection::ReadWrite, _) | (Protection::ReadOnly, AccessKind::Read)
        )
    }

    /// The real `PROT_*` bits this protection maps to on the mmap backing
    /// (exactly the paper's §4.3 `mprotect` arguments).
    pub fn host_prot(self) -> i32 {
        match self {
            Protection::None => crate::sys::PROT_NONE,
            Protection::ReadOnly => crate::sys::PROT_READ,
            Protection::ReadWrite => crate::sys::PROT_READ | crate::sys::PROT_WRITE,
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protection::None => f.write_str("---"),
            Protection::ReadOnly => f.write_str("r--"),
            Protection::ReadWrite => f.write_str("rw-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_matrix() {
        assert!(!Protection::None.allows(AccessKind::Read));
        assert!(!Protection::None.allows(AccessKind::Write));
        assert!(Protection::ReadOnly.allows(AccessKind::Read));
        assert!(!Protection::ReadOnly.allows(AccessKind::Write));
        assert!(Protection::ReadWrite.allows(AccessKind::Read));
        assert!(Protection::ReadWrite.allows(AccessKind::Write));
    }

    #[test]
    fn display_is_mprotect_like() {
        assert_eq!(Protection::None.to_string(), "---");
        assert_eq!(Protection::ReadOnly.to_string(), "r--");
        assert_eq!(Protection::ReadWrite.to_string(), "rw-");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn default_is_none() {
        assert_eq!(Protection::default(), Protection::None);
    }

    #[test]
    fn host_prot_bits_match_mprotect_semantics() {
        assert_eq!(Protection::None.host_prot(), 0);
        assert_eq!(Protection::ReadOnly.host_prot(), 1);
        assert_eq!(Protection::ReadWrite.host_prot(), 3);
    }
}
