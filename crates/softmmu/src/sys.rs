//! Minimal direct `extern "C"` bindings to the handful of libc calls the
//! mmap backing needs (`mmap`, `mprotect`, `munmap`, `memfd_create`,
//! `ftruncate`, `fallocate`, `sysconf`, `close`).
//!
//! The workspace is built without registry access, so we cannot depend on
//! the `libc` or `rustix` crates; `std` already links libc on every
//! supported host, which makes these declarations resolve at link time.
//! Everything here is Linux-specific — on other targets the wrappers
//! return [`MmuError::HostMmap`] so [`crate::AddressSpace::new_mmap`]
//! fails cleanly and callers fall back to the portable table-walk backend.
//!
//! All wrappers translate failures into [`MmuError::HostMmap`] carrying the
//! operation name and `errno`, and none of them panic.

use crate::fault::MmuError;

/// Pages are inaccessible (`PROT_NONE`).
pub const PROT_NONE: i32 = 0;
/// Pages are readable (`PROT_READ`).
pub const PROT_READ: i32 = 1;
/// Pages are writable (`PROT_WRITE`).
pub const PROT_WRITE: i32 = 2;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::ffi::c_void;

    const MAP_SHARED: i32 = 0x01;
    const MAP_NORESERVE: i32 = 0x4000;
    const MFD_CLOEXEC: u32 = 0x01;
    const FALLOC_FL_KEEP_SIZE: i32 = 0x01;
    const FALLOC_FL_PUNCH_HOLE: i32 = 0x02;
    const _SC_PAGESIZE: i32 = 30;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            off: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn memfd_create(name: *const u8, flags: u32) -> i32;
        fn ftruncate(fd: i32, len: i64) -> i32;
        fn fallocate(fd: i32, mode: i32, offset: i64, len: i64) -> i32;
        fn close(fd: i32) -> i32;
        fn sysconf(name: i32) -> i64;
        #[link_name = "__errno_location"]
        fn errno_location() -> *mut i32;
    }

    fn errno() -> i32 {
        // SAFETY: `__errno_location` is the glibc/musl TLS errno accessor; it
        // always returns a valid pointer for the calling thread.
        unsafe { *errno_location() }
    }

    fn err(op: &'static str) -> MmuError {
        MmuError::HostMmap { op, errno: errno() }
    }

    /// Host page size as reported by `sysconf(_SC_PAGESIZE)`.
    pub fn page_size() -> Result<u64, MmuError> {
        // SAFETY: sysconf has no memory-safety preconditions.
        let n = unsafe { sysconf(_SC_PAGESIZE) };
        if n <= 0 {
            Err(err("sysconf"))
        } else {
            Ok(n as u64)
        }
    }

    /// Creates an anonymous tmpfs file of `len` bytes (sparse — pages are
    /// allocated only when touched).
    pub fn memfd(len: u64) -> Result<i32, MmuError> {
        // SAFETY: the name is a NUL-terminated static string; memfd_create
        // copies it and takes no ownership.
        let fd = unsafe { memfd_create(c"softmmu".as_ptr().cast(), MFD_CLOEXEC) };
        if fd < 0 {
            return Err(err("memfd_create"));
        }
        let signed: i64 = match i64::try_from(len) {
            Ok(v) => v,
            Err(_) => {
                close_fd(fd);
                return Err(MmuError::HostMmap {
                    op: "ftruncate",
                    errno: 0,
                });
            }
        };
        // SAFETY: fd is a freshly created, owned memfd.
        if unsafe { ftruncate(fd, signed) } != 0 {
            let e = err("ftruncate");
            close_fd(fd);
            return Err(e);
        }
        Ok(fd)
    }

    /// Maps a full-length shared view of `fd` at a kernel-chosen address.
    pub fn map_view(fd: i32, len: u64, prot: i32) -> Result<*mut u8, MmuError> {
        // SAFETY: NULL hint + valid owned fd + in-bounds length; the kernel
        // picks the placement, so no existing mapping can be clobbered.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len as usize,
                prot,
                MAP_SHARED | MAP_NORESERVE,
                fd,
                0,
            )
        };
        if p as isize == -1 {
            Err(err("mmap"))
        } else {
            Ok(p.cast())
        }
    }

    /// Changes the protection of `[ptr, ptr+len)`.
    ///
    /// # Safety
    /// `[ptr, ptr+len)` must lie inside a mapping owned by the caller; no
    /// Rust reference may alias pages being downgraded.
    pub unsafe fn protect(ptr: *mut u8, len: u64, prot: i32) -> Result<(), MmuError> {
        // SAFETY: forwarded preconditions.
        if unsafe { mprotect(ptr.cast(), len as usize, prot) } != 0 {
            Err(err("mprotect"))
        } else {
            Ok(())
        }
    }

    /// Unmaps `[ptr, ptr+len)`.
    ///
    /// # Safety
    /// The range must be an exact mapping owned by the caller with no live
    /// references into it.
    pub unsafe fn unmap(ptr: *mut u8, len: u64) {
        // SAFETY: forwarded preconditions. Failure is unrecoverable and only
        // leaks address space, so it is ignored (Drop context).
        unsafe {
            let _ = munmap(ptr.cast(), len as usize);
        }
    }

    /// Punches a hole in `fd` at `[offset, offset+len)`: the pages are freed
    /// back to the kernel and read as zeroes when next touched.
    pub fn punch_hole(fd: i32, offset: u64, len: u64) -> Result<(), MmuError> {
        // SAFETY: valid owned fd; fallocate has no memory-safety
        // preconditions.
        let rc = unsafe {
            fallocate(
                fd,
                FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                offset as i64,
                len as i64,
            )
        };
        if rc != 0 {
            Err(err("fallocate"))
        } else {
            Ok(())
        }
    }

    /// Closes an owned file descriptor.
    pub fn close_fd(fd: i32) {
        // SAFETY: the caller owns fd and never reuses it after this call.
        unsafe {
            let _ = close(fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    const ENOSYS: i32 = 38;

    fn unsupported(op: &'static str) -> MmuError {
        MmuError::HostMmap { op, errno: ENOSYS }
    }

    /// Unsupported on this target.
    pub fn page_size() -> Result<u64, MmuError> {
        Err(unsupported("sysconf"))
    }

    /// Unsupported on this target.
    pub fn memfd(_len: u64) -> Result<i32, MmuError> {
        Err(unsupported("memfd_create"))
    }

    /// Unsupported on this target.
    pub fn map_view(_fd: i32, _len: u64, _prot: i32) -> Result<*mut u8, MmuError> {
        Err(unsupported("mmap"))
    }

    /// Unsupported on this target.
    ///
    /// # Safety
    /// No-op; trivially safe to call.
    pub unsafe fn protect(_ptr: *mut u8, _len: u64, _prot: i32) -> Result<(), MmuError> {
        Err(unsupported("mprotect"))
    }

    /// Unsupported on this target.
    ///
    /// # Safety
    /// No-op; trivially safe to call.
    pub unsafe fn unmap(_ptr: *mut u8, _len: u64) {}

    /// Unsupported on this target.
    pub fn punch_hole(_fd: i32, _offset: u64, _len: u64) -> Result<(), MmuError> {
        Err(unsupported("fallocate"))
    }

    /// Unsupported on this target.
    pub fn close_fd(_fd: i32) {}
}

pub use imp::{close_fd, map_view, memfd, page_size, protect, punch_hole, unmap};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = page_size().expect("sysconf");
        assert!(ps.is_power_of_two() && ps >= 4096);
    }

    #[test]
    fn memfd_map_write_read_roundtrip() {
        let len = 1u64 << 20;
        let fd = memfd(len).expect("memfd");
        let rw = map_view(fd, len, PROT_READ | PROT_WRITE).expect("map rw");
        let ro = map_view(fd, len, PROT_READ).expect("map ro");
        // The two views alias the same pages.
        // SAFETY: both pointers map `len` valid bytes we own.
        unsafe {
            rw.add(12345).write(0xAB);
            assert_eq!(ro.add(12345).read(), 0xAB);
        }
        // Punching the hole zeroes the page in both views.
        punch_hole(fd, 8192, 8192).expect("punch");
        // SAFETY: in-bounds read of the shared view.
        unsafe {
            assert_eq!(ro.add(12345).read(), 0);
        }
        // SAFETY: exact mappings created above, no live references remain.
        unsafe {
            unmap(rw, len);
            unmap(ro, len);
        }
        close_fd(fd);
    }

    #[test]
    fn protect_denies_and_restores() {
        let len = 4096u64 * 4;
        let fd = memfd(len).expect("memfd");
        let v = map_view(fd, len, PROT_READ | PROT_WRITE).expect("map");
        // SAFETY: v is our own mapping with no references into it.
        unsafe {
            protect(v, 4096, PROT_NONE).expect("downgrade");
            protect(v, 4096, PROT_READ | PROT_WRITE).expect("upgrade");
            v.write(7);
            assert_eq!(v.read(), 7);
            unmap(v, len);
        }
        close_fd(fd);
    }
}
