//! The mmap backing: real host memory behind the simulated address space.
//!
//! # Reserve/commit split
//!
//! One `memfd` holds the whole backing store as a sparse tmpfs file. Two
//! full-length `MAP_SHARED` views of it are mapped up front:
//!
//! * the **user view**, reserved `PROT_NONE` and re-protected at block
//!   granularity with real `mprotect` as the coherence protocol drives
//!   state transitions — this is the view whose raw pointers are handed to
//!   the zero-instrumentation scalar fast path;
//! * the **runtime view**, permanently `PROT_READ|PROT_WRITE` — the
//!   "kernel-mode" window the runtime itself copies through (DMA staging
//!   and landing, checked accesses after a software permission check), so
//!   landing bytes in a block the user view holds `PROT_NONE` never
//!   crashes.
//!
//! Pages cost nothing until touched; unmapping a region punches a
//! `FALLOC_FL_PUNCH_HOLE` through the file (freeing the pages *and*
//! guaranteeing they read zero if the range is ever mapped again) and
//! re-protects the user view `PROT_NONE`, following mmtk-core's
//! chunk-quarantine discipline.
//!
//! # Chunked translation
//!
//! Simulated addresses span the full 48-bit space but the reservation is a
//! few dozen GiB, so a flat offset is impossible. The space is divided
//! into 1 GiB chunks; a flat `sim chunk → host chunk` table (2^18 `u32`
//! entries) assigns host chunks on first use, bump-style. Translation is
//! two shifts, a table load and an add. Chunks are assigned in touch
//! order, so consecutively mapped objects are usually host-contiguous
//! even across chunk boundaries (spans are merged opportunistically).
//!
//! # Safety invariants
//!
//! * Both views live for the lifetime of the backing; all pointers handed
//!   out are invalidated by drop. Callers (the fast path) must check their
//!   object's `retired` flag before dereferencing.
//! * The runtime view is only touched under the owning shard's lock; the
//!   user view is touched lock-free by the fast path *after* an atomic
//!   block-state check. A program that breaks the ADSM contract (accessing
//!   an object while a kernel owns it) can race a downgrade and take a
//!   real `SIGSEGV` — a crash, never silent corruption.

use crate::addr::{VAddr, PAGE_SIZE, VADDR_LIMIT};
use crate::fault::{MmuError, MmuResult};
use crate::prot::Protection;
use crate::sys;

/// log2 of the chunk size (1 GiB).
const CHUNK_SHIFT: u32 = 30;
/// Granularity of the sim→host assignment.
pub const CHUNK_SIZE: u64 = 1 << CHUNK_SHIFT;
/// Number of chunks covering the 48-bit simulated space.
const SIM_CHUNKS: usize = (VADDR_LIMIT >> CHUNK_SHIFT) as usize;
/// Sentinel: sim chunk has no host chunk assigned yet.
const UNASSIGNED: u32 = u32::MAX;

/// Real memory behind the address space: one memfd, two views.
pub struct MmapBacking {
    fd: i32,
    user: *mut u8,
    runtime: *mut u8,
    reserve: u64,
    /// `sim chunk → host chunk`, [`UNASSIGNED`] until first use.
    chunk_of: Box<[u32]>,
    next_chunk: u32,
    host_chunks: u32,
}

// SAFETY: the raw pointers are owning handles to mappings that live as long
// as the backing; access discipline is documented in the module docs (the
// backing always sits behind its shard's lock, fast-path user-view access
// is atomically gated).
unsafe impl Send for MmapBacking {}
// SAFETY: see above — `&self` methods only read the translation table and
// copy through the runtime view, which callers serialize via the shard lock.
unsafe impl Sync for MmapBacking {}

impl std::fmt::Debug for MmapBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapBacking")
            .field("reserve", &self.reserve)
            .field("assigned_chunks", &self.next_chunk)
            .finish_non_exhaustive()
    }
}

impl MmapBacking {
    /// Reserves `reserve` bytes (rounded up to whole 1 GiB chunks) of real
    /// backing memory: creates the memfd and maps both views.
    ///
    /// # Errors
    /// [`MmuError::HostMmap`] when the host page size is not 4 KiB (the
    /// simulated page geometry would not line up with real `mprotect`) or
    /// when any of the host calls fail — the caller degrades to the
    /// table-walk backend.
    pub fn new(reserve: u64) -> MmuResult<Self> {
        let host_page = sys::page_size()?;
        if host_page != PAGE_SIZE {
            // Real mprotect could not express 4 KiB-granular transitions.
            return Err(MmuError::HostMmap {
                op: "page-size",
                errno: 0,
            });
        }
        let reserve = reserve
            .checked_add(CHUNK_SIZE - 1)
            .ok_or(MmuError::HostMmap {
                op: "reserve-size",
                errno: 0,
            })?
            & !(CHUNK_SIZE - 1);
        if reserve == 0 {
            return Err(MmuError::BadLength);
        }
        let fd = sys::memfd(reserve)?;
        let user = match sys::map_view(fd, reserve, sys::PROT_NONE) {
            Ok(p) => p,
            Err(e) => {
                sys::close_fd(fd);
                return Err(e);
            }
        };
        let runtime = match sys::map_view(fd, reserve, sys::PROT_READ | sys::PROT_WRITE) {
            Ok(p) => p,
            Err(e) => {
                // SAFETY: exact mapping created above; nothing references it.
                unsafe { sys::unmap(user, reserve) };
                sys::close_fd(fd);
                return Err(e);
            }
        };
        Ok(MmapBacking {
            fd,
            user,
            runtime,
            reserve,
            chunk_of: vec![UNASSIGNED; SIM_CHUNKS].into_boxed_slice(),
            next_chunk: 0,
            host_chunks: (reserve >> CHUNK_SHIFT) as u32,
        })
    }

    /// Bytes reserved (chunk-rounded).
    pub fn reserve_len(&self) -> u64 {
        self.reserve
    }

    /// Base address of the protection-managed user view (diagnostics and
    /// the `/proc/self/maps` protection tests).
    pub fn user_base(&self) -> *const u8 {
        self.user
    }

    /// Assigns host chunks to every sim chunk covering `[addr, addr+len)`.
    ///
    /// # Errors
    /// [`MmuError::OutOfVirtualSpace`] when the reservation is exhausted;
    /// already-assigned chunks are kept (assignments are permanent, pages
    /// are reclaimed by hole-punching instead).
    pub fn ensure_backed(&mut self, addr: VAddr, len: u64) -> MmuResult<()> {
        let first = (addr.0 >> CHUNK_SHIFT) as usize;
        let last = ((addr.0 + len - 1) >> CHUNK_SHIFT) as usize;
        // Validate before assigning so failure leaves no half state.
        let needed = self.chunk_of[first..=last]
            .iter()
            .filter(|&&c| c == UNASSIGNED)
            .count() as u32;
        if self.next_chunk + needed > self.host_chunks {
            return Err(MmuError::OutOfVirtualSpace);
        }
        for c in &mut self.chunk_of[first..=last] {
            if *c == UNASSIGNED {
                *c = self.next_chunk;
                self.next_chunk += 1;
            }
        }
        Ok(())
    }

    /// Host-file offset of a backed simulated address.
    #[inline]
    fn host_offset(&self, addr: VAddr) -> u64 {
        let chunk = self.chunk_of[(addr.0 >> CHUNK_SHIFT) as usize];
        debug_assert_ne!(chunk, UNASSIGNED, "address not backed: {addr}");
        ((chunk as u64) << CHUNK_SHIFT) | (addr.0 & (CHUNK_SIZE - 1))
    }

    /// Host-contiguous sub-spans of a backed range, as `(host_offset, len)`
    /// pairs. Adjacent chunks that happen to be host-adjacent are merged.
    fn spans(&self, addr: VAddr, len: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cur = addr;
        let mut remaining = len;
        let mut pending: Option<(u64, u64)> = None;
        std::iter::from_fn(move || loop {
            if remaining == 0 {
                return pending.take();
            }
            let in_chunk = (CHUNK_SIZE - (cur.0 & (CHUNK_SIZE - 1))).min(remaining);
            let off = self.host_offset(cur);
            cur = cur + in_chunk;
            remaining -= in_chunk;
            match pending {
                Some((p_off, p_len)) if p_off + p_len == off => {
                    pending = Some((p_off, p_len + in_chunk));
                }
                Some(prev) => {
                    pending = Some((off, in_chunk));
                    return Some(prev);
                }
                None => pending = Some((off, in_chunk)),
            }
        })
    }

    /// True when the whole backed range is one host-contiguous span — the
    /// precondition for handing out a raw fast-path pointer.
    pub fn is_contiguous(&self, addr: VAddr, len: u64) -> bool {
        self.spans(addr, len).nth(1).is_none()
    }

    /// Raw user-view pointer for a backed, host-contiguous range (the
    /// zero-instrumentation fast path). The pointer is valid until the
    /// backing is dropped; dereferencing is subject to the *real* page
    /// protection driven by [`Self::protect_user`].
    pub fn user_ptr(&self, addr: VAddr) -> *mut u8 {
        // SAFETY: host_offset is within the reservation by construction.
        unsafe { self.user.add(self.host_offset(addr) as usize) }
    }

    /// Applies `prot` to the user view over `[addr, addr+len)` with real
    /// `mprotect` (page-rounded outward).
    ///
    /// # Errors
    /// [`MmuError::HostMmap`] if the kernel rejects the call (e.g. VMA
    /// exhaustion); the simulated page table remains authoritative.
    pub fn protect_user(&self, addr: VAddr, len: u64, prot: Protection) -> MmuResult<()> {
        let start = addr.page_down();
        let len = (addr + len).page_up() - start;
        for (off, n) in self.spans(start, len) {
            // SAFETY: the span lies inside our owned user view; no Rust
            // references are ever formed over the user view.
            unsafe { sys::protect(self.user.add(off as usize), n, prot.host_prot())? };
        }
        Ok(())
    }

    /// Quarantines an unmapped range: punches the pages out of the backing
    /// file (freeing them and guaranteeing zeroes on re-commit) and returns
    /// the user view to `PROT_NONE`.
    ///
    /// # Errors
    /// [`MmuError::HostMmap`] only if re-protection fails; a failed hole
    /// punch falls back to zeroing through the runtime view so the
    /// fresh-allocation-reads-zero invariant survives.
    pub fn discard(&mut self, addr: VAddr, len: u64) -> MmuResult<()> {
        let start = addr.page_down();
        let len = (addr + len).page_up() - start;
        for (off, n) in self.spans(start, len) {
            if sys::punch_hole(self.fd, off, n).is_err() {
                // SAFETY: in-bounds span of the always-RW runtime view.
                unsafe { std::ptr::write_bytes(self.runtime.add(off as usize), 0, n as usize) };
            }
        }
        self.protect_user(start, len, Protection::None)
    }

    // ----- runtime-view copies ("kernel mode") ------------------------------

    /// Copies a backed range out through the runtime view.
    pub fn copy_out(&self, addr: VAddr, out: &mut [u8]) {
        let mut done = 0usize;
        for (off, n) in self.spans(addr, out.len() as u64) {
            // SAFETY: in-bounds span of the runtime view; destination is a
            // disjoint local buffer.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.runtime.add(off as usize),
                    out[done..].as_mut_ptr(),
                    n as usize,
                );
            }
            done += n as usize;
        }
    }

    /// Copies into a backed range through the runtime view.
    pub fn copy_in(&self, addr: VAddr, src: &[u8]) {
        let mut done = 0usize;
        for (off, n) in self.spans(addr, src.len() as u64) {
            // SAFETY: in-bounds span of the runtime view; source is a
            // disjoint caller buffer.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src[done..].as_ptr(),
                    self.runtime.add(off as usize),
                    n as usize,
                );
            }
            done += n as usize;
        }
    }

    /// Appends `len` bytes of a backed range to `out` without zero-filling.
    pub fn append_to(&self, addr: VAddr, len: u64, out: &mut Vec<u8>) {
        out.reserve(len as usize);
        for (off, n) in self.spans(addr, len) {
            let at = out.len();
            // SAFETY: `reserve` guaranteed capacity; we copy exactly `n`
            // bytes from an in-bounds runtime-view span, then publish the
            // new length covering only initialized bytes.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.runtime.add(off as usize),
                    out.as_mut_ptr().add(at),
                    n as usize,
                );
                out.set_len(at + n as usize);
            }
        }
    }

    /// Fills a backed range with `value` through the runtime view.
    pub fn fill(&self, addr: VAddr, value: u8, len: u64) {
        for (off, n) in self.spans(addr, len) {
            // SAFETY: in-bounds span of the runtime view.
            unsafe { std::ptr::write_bytes(self.runtime.add(off as usize), value, n as usize) };
        }
    }

    /// Borrowed runtime-view bytes of an intra-chunk range (the scalar
    /// access path; a scalar never crosses a chunk because chunks are
    /// page-aligned and scalars are power-of-two sized ≤ 8).
    #[inline]
    pub fn bytes(&self, addr: VAddr, len: usize) -> &[u8] {
        debug_assert!(len as u64 <= CHUNK_SIZE - (addr.0 & (CHUNK_SIZE - 1)));
        // SAFETY: in-bounds intra-chunk range of the runtime view, borrowed
        // at `&self` lifetime; mutation goes through `&self` raw copies too,
        // serialized by the owning shard's lock.
        unsafe {
            std::slice::from_raw_parts(self.runtime.add(self.host_offset(addr) as usize), len)
        }
    }

    /// Mutable runtime-view bytes of an intra-chunk range.
    #[inline]
    pub fn bytes_mut(&mut self, addr: VAddr, len: usize) -> &mut [u8] {
        debug_assert!(len as u64 <= CHUNK_SIZE - (addr.0 & (CHUNK_SIZE - 1)));
        // SAFETY: as `bytes`, with exclusive access through `&mut self`.
        unsafe {
            std::slice::from_raw_parts_mut(self.runtime.add(self.host_offset(addr) as usize), len)
        }
    }
}

impl Drop for MmapBacking {
    fn drop(&mut self) {
        // SAFETY: exact mappings created in `new`; the owning AddressSpace
        // is being dropped, so no translation (and no fast view that passed
        // its `retired` check) can still reference them — stale fast-path
        // pointers are fenced by the object's retired flag before this runs.
        unsafe {
            sys::unmap(self.user, self.reserve);
            sys::unmap(self.runtime, self.reserve);
        }
        sys::close_fd(self.fd);
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_zero_on_reuse() {
        let mut b = MmapBacking::new(2 * CHUNK_SIZE).expect("backing");
        let a = VAddr(0x7000_0000_0000);
        b.ensure_backed(a, 8192).unwrap();
        b.copy_in(a + 100, &[1, 2, 3]);
        let mut out = [0u8; 3];
        b.copy_out(a + 100, &mut out);
        assert_eq!(out, [1, 2, 3]);
        b.discard(a, 8192).unwrap();
        b.copy_out(a + 100, &mut out);
        assert_eq!(out, [0, 0, 0], "hole punch must zero the pages");
    }

    #[test]
    fn chunk_translation_spans_merge_in_touch_order() {
        let mut b = MmapBacking::new(4 * CHUNK_SIZE).expect("backing");
        // Two sim chunks far apart, touched in order: host chunks 0 and 1.
        let lo = VAddr(0x1000_0000);
        let hi = VAddr(0x7000_0000_0000);
        b.ensure_backed(lo, PAGE_SIZE).unwrap();
        b.ensure_backed(hi, PAGE_SIZE).unwrap();
        assert!(b.is_contiguous(lo, PAGE_SIZE));
        // A range crossing a sim-chunk boundary whose chunks were assigned
        // consecutively is host-contiguous (merged span).
        let edge = VAddr(CHUNK_SIZE * 8 - PAGE_SIZE);
        b.ensure_backed(edge, 2 * PAGE_SIZE).unwrap();
        assert!(b.is_contiguous(edge, 2 * PAGE_SIZE));
        b.copy_in(edge, &[0xAB; 8192]);
        let mut out = [0u8; 8192];
        b.copy_out(edge, &mut out);
        assert!(out.iter().all(|&x| x == 0xAB));
    }

    #[test]
    fn reservation_exhaustion_is_clean() {
        let mut b = MmapBacking::new(CHUNK_SIZE).expect("backing");
        b.ensure_backed(VAddr(0), PAGE_SIZE).unwrap();
        // A second distinct sim chunk cannot fit in a 1-chunk reservation.
        assert!(matches!(
            b.ensure_backed(VAddr(CHUNK_SIZE * 5), PAGE_SIZE),
            Err(MmuError::OutOfVirtualSpace)
        ));
        // The first chunk still works.
        b.copy_in(VAddr(16), &[9]);
    }

    #[test]
    fn oversized_reservation_fails_without_panic() {
        assert!(MmapBacking::new(u64::MAX).is_err());
    }

    #[test]
    fn user_view_protection_transitions() {
        let mut b = MmapBacking::new(CHUNK_SIZE).expect("backing");
        let a = VAddr(0x2000);
        b.ensure_backed(a, PAGE_SIZE).unwrap();
        b.protect_user(a, PAGE_SIZE, Protection::ReadWrite).unwrap();
        let p = b.user_ptr(a);
        // SAFETY: page is RW in the user view and backed.
        unsafe {
            p.write(42);
            assert_eq!(p.read(), 42);
        }
        b.protect_user(a, PAGE_SIZE, Protection::ReadOnly).unwrap();
        // SAFETY: page is readable.
        unsafe { assert_eq!(p.read(), 42) };
        b.protect_user(a, PAGE_SIZE, Protection::None).unwrap();
        // The runtime view still works regardless.
        let mut out = [0u8; 1];
        b.copy_out(a, &mut out);
        assert_eq!(out, [42]);
    }
}
