//! # softmmu — a software MMU
//!
//! The GMAC paper detects CPU accesses to shared data with hardware memory
//! protection: `mmap` fixed-address mappings, `mprotect` permission changes
//! and `SIGSEGV` delivery to a user-level handler (§4.2–4.3). This crate
//! provides that state machine as an explicit substrate:
//!
//! * a 48-bit virtual [`AddressSpace`] with `mmap(MAP_FIXED)` / anonymous
//!   mapping / `mprotect` equivalents backed by a real 4-level radix
//!   [`table::PageTable`],
//! * per-page [`Protection`] checked on every access,
//! * [`Fault`] values standing in for `SIGSEGV`: the GMAC runtime resolves
//!   the fault (protocol transition + permission change) and retries, exactly
//!   like the paper's signal handler,
//! * raw ("kernel-mode") access paths the runtime uses to stage DMA without
//!   tripping its own protection,
//! * a direct-mapped software **TLB** caching page → (frame, protection)
//!   translations, so hot access paths skip the 4-level radix walk.
//!
//! ## Two byte-storage backends
//!
//! Where the *bytes* live is pluggable, and the two backends are
//! observationally identical (same faults, same data, same virtual time —
//! only wall-clock time differs):
//!
//! * [`AddressSpace::new`] — the portable **table-walk** backend: one boxed
//!   4 KiB frame per page, every access software-checked. Works anywhere.
//! * [`AddressSpace::new_mmap`] — the **mmap** backend (Linux): the paper's
//!   actual mechanism. Real host memory is reserved `PROT_NONE` up front
//!   and committed/re-protected with real `mprotect` as regions are mapped
//!   (see [`backing`]). The software page table stays authoritative for
//!   checked access and fault reporting, but accessible ranges can hand out
//!   raw host pointers ([`AddressSpace::fast_base`]) so a hot scalar access
//!   is a plain load/store with **zero instrumentation** on the hit path.
//!
//! ## TLB generation invariant
//!
//! Every page-table mutation (`map_fixed`, `map_anywhere`, `unmap_region`,
//! `protect`) bumps an internal generation counter; TLB entries are stamped
//! at fill time and only hit while their stamp matches. A stale entry after
//! an `mprotect` downgrade therefore never lets an access slip through: the
//! probe misses, the radix walk observes the new permissions, and the access
//! faults exactly as it would uncached. `AddressSpace::set_tlb_enabled(false)`
//! turns the cache off entirely (the GMAC ablation mode); behaviour is
//! bit-identical either way, only wall-clock time differs.
//!
//! ```
//! use softmmu::{AddressSpace, Protection, VAddr, MmuError};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut vm = AddressSpace::new();
//! let region = vm.map_fixed(VAddr(0x2_0000_0000), 4096, Protection::ReadOnly)?;
//! // A write faults like SIGSEGV...
//! assert!(matches!(vm.store::<u32>(VAddr(0x2_0000_0000), 7), Err(MmuError::Fault(_))));
//! // ...the "handler" upgrades permissions and the retry succeeds.
//! vm.protect(VAddr(0x2_0000_0000), 4096, Protection::ReadWrite)?;
//! vm.store::<u32>(VAddr(0x2_0000_0000), 7)?;
//! # let _ = region;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::missing_safety_doc)]

pub mod access;
pub mod addr;
pub mod backing;
pub mod fault;
pub mod frame;
pub mod prot;
pub mod space;
pub mod sys;
pub mod table;

pub use access::{from_bytes, to_bytes, Scalar};
pub use addr::{pages_covering, VAddr, VPage, PAGE_SHIFT, PAGE_SIZE, VADDR_LIMIT};
pub use fault::{Fault, MmuError, MmuResult};
pub use prot::{AccessKind, Protection};
pub use space::{AddressSpace, Region, RegionId};
