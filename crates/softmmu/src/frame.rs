//! Physical frame arena backing the simulated system memory.

use crate::addr::PAGE_SIZE;

/// Index of a physical frame in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameId(u32);

impl FrameId {
    /// Placeholder for page-table entries on the mmap backing, where bytes
    /// live in the host mapping and no arena frame exists. Never a valid
    /// arena index; the arena panics if it is ever dereferenced.
    pub(crate) const SENTINEL: FrameId = FrameId(u32::MAX);
}

/// System-memory frame storage with a free list.
#[derive(Debug, Default)]
pub struct FrameArena {
    frames: Vec<Option<Box<[u8]>>>,
    free: Vec<u32>,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zeroed frame.
    pub fn alloc(&mut self) -> FrameId {
        if let Some(idx) = self.free.pop() {
            self.frames[idx as usize] = Some(zeroed_frame());
            FrameId(idx)
        } else {
            self.frames.push(Some(zeroed_frame()));
            FrameId(self.frames.len() as u32 - 1)
        }
    }

    /// Releases a frame back to the arena.
    ///
    /// # Panics
    /// Panics if the frame was already free (double free is a runtime bug).
    pub fn free(&mut self, id: FrameId) {
        let slot = &mut self.frames[id.0 as usize];
        assert!(slot.is_some(), "double free of frame {id:?}");
        *slot = None;
        self.free.push(id.0);
    }

    /// Read-only view of a frame's bytes.
    ///
    /// # Panics
    /// Panics on a freed or out-of-range frame id.
    pub fn bytes(&self, id: FrameId) -> &[u8] {
        self.frames[id.0 as usize]
            .as_deref()
            .expect("use of freed frame")
    }

    /// Mutable view of a frame's bytes.
    ///
    /// # Panics
    /// Panics on a freed or out-of-range frame id.
    pub fn bytes_mut(&mut self, id: FrameId) -> &mut [u8] {
        self.frames[id.0 as usize]
            .as_deref_mut()
            .expect("use of freed frame")
    }

    /// Number of live frames.
    pub fn live_frames(&self) -> usize {
        self.frames.len() - self.free.len()
    }
}

fn zeroed_frame() -> Box<[u8]> {
    vec![0u8; PAGE_SIZE as usize].into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_zeroed_frames() {
        let mut a = FrameArena::new();
        let f = a.alloc();
        assert!(a.bytes(f).iter().all(|&b| b == 0));
        assert_eq!(a.bytes(f).len(), PAGE_SIZE as usize);
        assert_eq!(a.live_frames(), 1);
    }

    #[test]
    fn freed_frames_are_reused_and_rezeroed() {
        let mut a = FrameArena::new();
        let f = a.alloc();
        a.bytes_mut(f)[0] = 0xFF;
        a.free(f);
        assert_eq!(a.live_frames(), 0);
        let g = a.alloc();
        assert_eq!(g, f, "free list reuses the slot");
        assert_eq!(a.bytes(g)[0], 0, "recycled frames are zeroed");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameArena::new();
        let f = a.alloc();
        a.free(f);
        a.free(f);
    }

    #[test]
    #[should_panic(expected = "use of freed frame")]
    fn use_after_free_panics() {
        let mut a = FrameArena::new();
        let f = a.alloc();
        a.free(f);
        let _ = a.bytes(f);
    }
}
