//! Protection faults and MMU errors.
//!
//! In the paper, accesses to invalid/read-only shared data trigger a hardware
//! page fault delivered to GMAC as a POSIX signal (§4.3). In this softmmu the
//! same event is a [`Fault`] value returned from the access path; the GMAC
//! runtime plays the role of the signal handler: it resolves the fault
//! (protocol state transition + permission change) and retries the access.

use crate::addr::VAddr;
use crate::prot::{AccessKind, Protection};
use crate::space::RegionId;
use std::error::Error;
use std::fmt;

/// A protection violation: the simulated equivalent of `SIGSEGV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// First offending byte (like `siginfo.si_addr`).
    pub addr: VAddr,
    /// What the access attempted.
    pub kind: AccessKind,
    /// The permissions the page had.
    pub prot: Protection,
    /// The region containing the page.
    pub region: RegionId,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {} (page is {})",
            self.kind, self.addr, self.prot
        )
    }
}

/// Errors from the software MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MmuError {
    /// A protection violation (recoverable: resolve and retry).
    Fault(Fault),
    /// Access or operation touched an unmapped address.
    Unmapped(VAddr),
    /// A fixed mapping collided with an existing region.
    Overlap {
        /// Requested start.
        addr: VAddr,
        /// Requested length.
        len: u64,
    },
    /// Address was not page aligned where alignment is required.
    Misaligned(VAddr),
    /// The virtual address space is exhausted (or the request exceeds it).
    OutOfVirtualSpace,
    /// Referenced region does not exist.
    InvalidRegion(RegionId),
    /// Zero-length mapping or access where a length is required.
    BadLength,
    /// A real host `mmap`/`mprotect`/`fallocate` call failed (mmap backing
    /// only; the caller degrades to the table-walk backend at setup time).
    HostMmap {
        /// The host operation that failed.
        op: &'static str,
        /// Host `errno` (0 when the failure was detected before the call).
        errno: i32,
    },
}

impl fmt::Display for MmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuError::Fault(fault) => write!(f, "{fault}"),
            MmuError::Unmapped(a) => write!(f, "unmapped address {a}"),
            MmuError::Overlap { addr, len } => {
                write!(f, "mapping [{addr}, +{len}) overlaps an existing region")
            }
            MmuError::Misaligned(a) => write!(f, "address {a} is not page aligned"),
            MmuError::OutOfVirtualSpace => f.write_str("virtual address space exhausted"),
            MmuError::InvalidRegion(r) => write!(f, "invalid region id {r:?}"),
            MmuError::BadLength => f.write_str("zero-length mapping is not allowed"),
            MmuError::HostMmap { op, errno } => {
                write!(f, "host {op} failed (errno {errno})")
            }
        }
    }
}

impl Error for MmuError {}

impl From<Fault> for MmuError {
    fn from(f: Fault) -> Self {
        MmuError::Fault(f)
    }
}

/// Result alias for MMU operations.
pub type MmuResult<T> = Result<T, MmuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display() {
        let f = Fault {
            addr: VAddr(0x1234),
            kind: AccessKind::Write,
            prot: Protection::ReadOnly,
            region: RegionId(3),
        };
        assert_eq!(f.to_string(), "write fault at 0x1234 (page is r--)");
        let e: MmuError = f.into();
        assert!(matches!(e, MmuError::Fault(_)));
        assert_eq!(e.to_string(), f.to_string());
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            MmuError::Unmapped(VAddr(0x10)).to_string(),
            "unmapped address 0x10"
        );
        assert_eq!(
            MmuError::Overlap {
                addr: VAddr(0x1000),
                len: 4096
            }
            .to_string(),
            "mapping [0x1000, +4096) overlaps an existing region"
        );
        assert_eq!(
            MmuError::Misaligned(VAddr(1)).to_string(),
            "address 0x1 is not page aligned"
        );
        assert_eq!(
            MmuError::HostMmap {
                op: "mmap",
                errno: 12
            }
            .to_string(),
            "host mmap failed (errno 12)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmuError>();
    }
}
