//! A four-level radix page table, mirroring x86-64 long-mode paging over the
//! 48-bit simulated address space (9+9+9+9 index bits above the 12-bit page
//! offset).

use crate::addr::VPage;
use crate::frame::FrameId;
use crate::prot::Protection;
use crate::space::RegionId;

const FANOUT: usize = 512;
const LEVEL_BITS: u32 = 9;

/// A page-table entry: backing frame, permissions, owning region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Backing physical frame.
    pub frame: FrameId,
    /// Current permissions (driven by the coherence protocol).
    pub prot: Protection,
    /// The mapped region this page belongs to.
    pub region: RegionId,
}

#[derive(Debug)]
struct Node<T> {
    children: Box<[Option<T>]>,
    live: usize,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: std::iter::repeat_with(|| None).take(FANOUT).collect(),
            live: 0,
        }
    }
}

type L1 = Node<Pte>;
type L2 = Node<Box<L1>>;
type L3 = Node<Box<L2>>;
type L4 = Node<Box<L3>>;

/// The radix page table.
#[derive(Debug)]
pub struct PageTable {
    root: L4,
    mapped: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

fn indices(page: VPage) -> [usize; 4] {
    let v = page.0;
    let mask = (1u64 << LEVEL_BITS) - 1;
    [
        ((v >> (3 * LEVEL_BITS)) & mask) as usize,
        ((v >> (2 * LEVEL_BITS)) & mask) as usize,
        ((v >> LEVEL_BITS) & mask) as usize,
        (v & mask) as usize,
    ]
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PageTable {
            root: Node::new(),
            mapped: 0,
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Installs a mapping, returning the previous entry if one existed.
    pub fn map(&mut self, page: VPage, pte: Pte) -> Option<Pte> {
        let [i4, i3, i2, i1] = indices(page);
        let l3 = get_or_insert(&mut self.root, i4);
        let l2 = get_or_insert(l3, i3);
        let l1 = get_or_insert(l2, i2);
        let prev = l1.children[i1].replace(pte);
        if prev.is_none() {
            l1.live += 1;
            self.mapped += 1;
        }
        prev
    }

    /// Removes a mapping, returning it. Empty intermediate nodes are pruned.
    pub fn unmap(&mut self, page: VPage) -> Option<Pte> {
        let [i4, i3, i2, i1] = indices(page);
        let l3 = self.root.children[i4].as_mut()?;
        let l2 = l3.children[i3].as_mut()?;
        let l1 = l2.children[i2].as_mut()?;
        let prev = l1.children[i1].take()?;
        l1.live -= 1;
        self.mapped -= 1;
        // Prune empty subtrees so long-running simulations do not leak nodes.
        if l1.live == 0 {
            l2.children[i2] = None;
            l2.live -= 1;
            if l2.live == 0 {
                l3.children[i3] = None;
                l3.live -= 1;
                if l3.live == 0 {
                    self.root.children[i4] = None;
                    self.root.live -= 1;
                }
            }
        }
        Some(prev)
    }

    /// Walks the table for `page`.
    pub fn lookup(&self, page: VPage) -> Option<&Pte> {
        let [i4, i3, i2, i1] = indices(page);
        self.root.children[i4].as_ref()?.children[i3]
            .as_ref()?
            .children[i2]
            .as_ref()?
            .children[i1]
            .as_ref()
    }

    /// Walks the table for `page`, mutably.
    pub fn lookup_mut(&mut self, page: VPage) -> Option<&mut Pte> {
        let [i4, i3, i2, i1] = indices(page);
        self.root.children[i4].as_mut()?.children[i3]
            .as_mut()?
            .children[i2]
            .as_mut()?
            .children[i1]
            .as_mut()
    }

    /// Changes the protection of a mapped page; returns the old protection.
    pub fn protect(&mut self, page: VPage, prot: Protection) -> Option<Protection> {
        let pte = self.lookup_mut(page)?;
        let old = pte.prot;
        pte.prot = prot;
        Some(old)
    }
}

fn get_or_insert<T>(node: &mut Node<Box<Node<T>>>, idx: usize) -> &mut Node<T> {
    if node.children[idx].is_none() {
        node.children[idx] = Some(Box::new(Node::new()));
        node.live += 1;
    }
    node.children[idx].as_mut().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameArena;

    fn pte(arena: &mut FrameArena, prot: Protection) -> Pte {
        Pte {
            frame: arena.alloc(),
            prot,
            region: RegionId(1),
        }
    }

    #[test]
    fn map_lookup_unmap_roundtrip() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        let p = VPage(0x1_2345);
        let e = pte(&mut a, Protection::ReadOnly);
        assert!(t.map(p, e).is_none());
        assert_eq!(t.mapped_pages(), 1);
        assert_eq!(t.lookup(p), Some(&e));
        assert_eq!(t.unmap(p), Some(e));
        assert_eq!(t.lookup(p), None);
        assert_eq!(t.mapped_pages(), 0);
    }

    #[test]
    fn distant_pages_do_not_interfere() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        // Pages in very different parts of the 48-bit space.
        let pages = [
            VPage(0),
            VPage(0x7fff_ffff),
            VPage(1 << 35),
            VPage(0xF_FFFF_FFFF),
        ];
        for (i, &p) in pages.iter().enumerate() {
            let e = Pte {
                frame: a.alloc(),
                prot: Protection::ReadWrite,
                region: RegionId(i as u64),
            };
            t.map(p, e);
        }
        assert_eq!(t.mapped_pages(), 4);
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(t.lookup(p).unwrap().region, RegionId(i as u64));
        }
    }

    #[test]
    fn remap_returns_previous() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        let p = VPage(42);
        let e1 = pte(&mut a, Protection::None);
        let e2 = pte(&mut a, Protection::ReadWrite);
        t.map(p, e1);
        assert_eq!(t.map(p, e2), Some(e1));
        assert_eq!(t.mapped_pages(), 1, "remap does not double count");
    }

    #[test]
    fn protect_updates_in_place() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        let p = VPage(7);
        t.map(p, pte(&mut a, Protection::None));
        assert_eq!(t.protect(p, Protection::ReadWrite), Some(Protection::None));
        assert_eq!(t.lookup(p).unwrap().prot, Protection::ReadWrite);
        assert_eq!(t.protect(VPage(8), Protection::None), None, "unmapped page");
    }

    #[test]
    fn unmap_prunes_empty_subtrees() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        let p = VPage(0x123_4567);
        t.map(p, pte(&mut a, Protection::ReadOnly));
        t.unmap(p);
        // After pruning, the root has no children.
        assert_eq!(t.root.live, 0);
    }

    #[test]
    fn adjacent_pages_share_leaf() {
        let mut t = PageTable::new();
        let mut a = FrameArena::new();
        t.map(VPage(0x100), pte(&mut a, Protection::ReadOnly));
        t.map(VPage(0x101), pte(&mut a, Protection::ReadOnly));
        assert_eq!(t.root.live, 1, "one L3 subtree serves both pages");
        assert_eq!(t.mapped_pages(), 2);
    }
}
