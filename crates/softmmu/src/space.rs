//! The simulated host address space: region bookkeeping (`mmap`-like),
//! per-page protection (`mprotect`-like) and checked access paths.

use crate::addr::{pages_covering, VAddr, VPage, PAGE_SIZE, VADDR_LIMIT};
use crate::backing::MmapBacking;
use crate::fault::{Fault, MmuError, MmuResult};
use crate::frame::{FrameArena, FrameId};
use crate::prot::{AccessKind, Protection};
use crate::table::{PageTable, Pte};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region:{}", self.0)
    }
}

/// A contiguous mapped range of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Region identifier.
    pub id: RegionId,
    /// First byte (page aligned).
    pub start: VAddr,
    /// Length in bytes (page aligned).
    pub len: u64,
}

impl Region {
    /// One past the last byte.
    pub fn end(&self) -> VAddr {
        self.start + self.len
    }

    /// True when `addr` lies inside the region.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// Base of the area used by anonymous (`map_anywhere`) mappings, chosen away
/// from the device windows used by the unified-address trick.
const MMAP_BASE: u64 = 0x7000_0000_0000;

/// Number of entries in the software TLB (direct-mapped, power of two).
const TLB_ENTRIES: usize = 64;

/// One cached translation: a page's PTE plus the generation it was filled
/// at. An entry whose stamp trails [`Tlb::generation`] is stale and never
/// hits, so a single counter bump invalidates the whole TLB in O(1).
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    page: VPage,
    pte: Pte,
    stamp: u64,
}

/// A direct-mapped software TLB over the radix page table.
///
/// # Generation-counter invariant
///
/// Every mutation of the page table — `map_fixed`, `unmap_region`,
/// `protect` — MUST bump [`Tlb::generation`] before returning. A probe
/// compares the entry's fill stamp against the current generation, so any
/// entry cached before the mutation stops hitting immediately: a stale
/// translation after an `mprotect` downgrade still walks the table and
/// faults exactly like the uncached path. Entries are filled through
/// [`Cell`]s so read-only ("kernel-mode") paths can warm the cache; the
/// address space is therefore `Send` but not `Sync`, which is fine — it
/// always lives behind its device shard's mutex.
#[derive(Debug)]
struct Tlb {
    entries: [Cell<Option<TlbEntry>>; TLB_ENTRIES],
    /// Bumped by every page-table mutation (see invariant above).
    generation: u64,
    enabled: bool,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl Tlb {
    fn new() -> Self {
        Tlb {
            entries: std::array::from_fn(|_| Cell::new(None)),
            generation: 0,
            enabled: true,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    #[inline]
    fn slot(page: VPage) -> usize {
        page.0 as usize & (TLB_ENTRIES - 1)
    }

    /// Hit-only probe: no walk, no fill, no counting (callers count a hit
    /// only when the translation is actually used, so a protection-denied
    /// fast-path probe followed by the slow path's re-probe is not counted
    /// twice).
    #[inline]
    fn probe_uncounted(&self, page: VPage) -> Option<Pte> {
        if !self.enabled {
            return None;
        }
        let entry = self.entries[Self::slot(page)].get()?;
        (entry.page == page && entry.stamp == self.generation).then_some(entry.pte)
    }

    #[inline]
    fn count_hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    #[inline]
    fn fill(&self, page: VPage, pte: Pte) {
        if self.enabled {
            self.entries[Self::slot(page)].set(Some(TlbEntry {
                page,
                pte,
                stamp: self.generation,
            }));
        }
    }

    /// O(1) whole-TLB invalidation (the generation bump).
    fn invalidate(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }
}

/// Where page bytes live: the portable boxed-frame arena, or real host
/// memory behind a reserve/commit mmap (see [`crate::backing`]).
#[derive(Debug)]
enum Backing {
    /// Portable table-walk backend: one `Box<[u8; 4096]>` per page.
    Arena(FrameArena),
    /// Real anonymous mapping: bytes at host addresses, real `mprotect`.
    Mmap(MmapBacking),
}

/// The software MMU: page table + backing store + region registry + TLB.
#[derive(Debug)]
pub struct AddressSpace {
    table: PageTable,
    backing: Backing,
    regions: BTreeMap<u64, Region>,
    /// Ranges with an escaped fast-path pointer (`start -> end`): real
    /// user-view protection is materialized lazily, only where a raw
    /// pointer can actually observe it (see [`Self::fast_base`]).
    armed: BTreeMap<u64, u64>,
    next_id: u64,
    mmap_cursor: u64,
    faults_observed: u64,
    tlb: Tlb,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space on the portable frame-arena backend
    /// (TLB enabled).
    pub fn new() -> Self {
        AddressSpace {
            table: PageTable::new(),
            backing: Backing::Arena(FrameArena::new()),
            regions: BTreeMap::new(),
            armed: BTreeMap::new(),
            next_id: 1,
            mmap_cursor: MMAP_BASE,
            faults_observed: 0,
            tlb: Tlb::new(),
        }
    }

    /// Creates an empty address space backed by a real host mapping:
    /// `reserve` bytes (chunk-rounded) are reserved up front `PROT_NONE`
    /// and committed/protected as regions are mapped. Raw host pointers
    /// into the mapping can then serve scalar access with zero
    /// instrumentation (see [`Self::fast_base`]).
    ///
    /// # Errors
    /// [`MmuError::HostMmap`] when the host cannot provide the mapping
    /// (non-Linux target, non-4 KiB pages, reservation failure) — callers
    /// degrade to [`Self::new`].
    pub fn new_mmap(reserve: u64) -> MmuResult<Self> {
        let backing = MmapBacking::new(reserve)?;
        Ok(AddressSpace {
            table: PageTable::new(),
            backing: Backing::Mmap(backing),
            regions: BTreeMap::new(),
            armed: BTreeMap::new(),
            next_id: 1,
            mmap_cursor: MMAP_BASE,
            faults_observed: 0,
            tlb: Tlb::new(),
        })
    }

    /// Whether this space runs on the mmap backend.
    pub fn is_mmap_backed(&self) -> bool {
        matches!(self.backing, Backing::Mmap(_))
    }

    /// Raw user-view host pointer for `[addr, addr+len)` — the
    /// zero-instrumentation fast path. `Some` only on the mmap backend,
    /// for a fully mapped, host-contiguous range. Dereferencing is subject
    /// to the *real* page protection (driven by [`Self::protect`]) and to
    /// the mapping's lifetime; see the safety invariants in
    /// [`crate::backing`].
    ///
    /// Handing out the pointer **arms** the range: its real user-view
    /// protection is materialized from the page table now, and every later
    /// [`Self::protect`] over it is mirrored with real `mprotect`. Ranges
    /// that never arm skip the user-view syscalls entirely — the runtime's
    /// own copies go through the always-RW runtime view and the checked
    /// path enforces the software page table, so protection there guards
    /// nobody.
    pub fn fast_base(&mut self, addr: VAddr, len: u64) -> Option<*mut u8> {
        if len == 0 {
            return None;
        }
        let end = addr.checked_add(len)?;
        let ok = {
            let Backing::Mmap(m) = &self.backing else {
                return None;
            };
            self.region_at(addr).is_some_and(|r| end <= r.end()) && m.is_contiguous(addr, len)
        };
        if !ok {
            return None;
        }
        // No pointer escapes unless its protection could be materialized.
        self.arm(addr, len).ok()?;
        let Backing::Mmap(m) = &self.backing else {
            unreachable!("backend checked above");
        };
        Some(m.user_ptr(addr))
    }

    /// Records `[addr, addr+len)` as armed and syncs its real user-view
    /// protection from the page table (one `mprotect` per equal-protection
    /// run).
    fn arm(&mut self, addr: VAddr, len: u64) -> MmuResult<()> {
        let (mut lo, mut hi) = (addr.0, addr.0 + len);
        // Coalesce with overlapping entries (re-arming is idempotent).
        // Armed ranges are pairwise disjoint, so ends ascend with starts
        // and the reverse scan stops at the first non-overlapping entry.
        let overlapping: Vec<u64> = self
            .armed
            .range(..hi)
            .rev()
            .take_while(|&(_, &e)| e > lo)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.armed.remove(&s).expect("scanned key vanished");
            lo = lo.min(s);
            hi = hi.max(e);
        }
        self.armed.insert(lo, hi);
        let Backing::Mmap(m) = &self.backing else {
            return Ok(());
        };
        let mut run: Option<(VAddr, u64, Protection)> = None;
        for page in pages_covering(addr, len) {
            let prot = self
                .table
                .lookup(page)
                .map(|pte| pte.prot)
                .ok_or(MmuError::Unmapped(page.base()))?;
            run = match run {
                Some((start, n, p)) if p == prot => Some((start, n + PAGE_SIZE, p)),
                Some((start, n, p)) => {
                    m.protect_user(start, n, p)?;
                    Some((page.base(), PAGE_SIZE, prot))
                }
                None => Some((page.base(), PAGE_SIZE, prot)),
            };
        }
        if let Some((start, n, p)) = run {
            m.protect_user(start, n, p)?;
        }
        Ok(())
    }

    /// Whether any armed range overlaps `[addr, addr+len)`.
    fn armed_intersects(&self, addr: VAddr, len: u64) -> bool {
        self.armed
            .range(..addr.0 + len)
            .next_back()
            .is_some_and(|(_, &e)| e > addr.0)
    }

    /// The host user-view reservation as `(base, len)`, for protection
    /// diagnostics (e.g. asserting `PROT_NONE` quarantine via
    /// `/proc/self/maps`). `None` on the arena backend.
    pub fn host_reservation(&self) -> Option<(usize, u64)> {
        match &self.backing {
            Backing::Mmap(m) => Some((m.user_base() as usize, m.reserve_len())),
            Backing::Arena(_) => None,
        }
    }

    // ----- TLB ---------------------------------------------------------------

    /// Enables or disables the software TLB (the ablation toggle). Disabling
    /// also drops all cached translations.
    pub fn set_tlb_enabled(&mut self, on: bool) {
        self.tlb.enabled = on;
        self.tlb.invalidate();
    }

    /// Whether the TLB is enabled.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb.enabled
    }

    /// Translations served from the TLB without walking the radix table.
    pub fn tlb_hits(&self) -> u64 {
        self.tlb.hits.get()
    }

    /// Translations that had to walk the radix table (unmapped pages count
    /// as misses too; with the TLB disabled neither counter moves).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.misses.get()
    }

    /// Current TLB generation (bumped by every `map`/`protect`/`unmap`; test
    /// hook for the invalidation invariant).
    pub fn tlb_generation(&self) -> u64 {
        self.tlb.generation
    }

    /// Cached page translation: TLB probe first, radix walk + fill on a
    /// miss. Every checked and raw access path funnels through here, so the
    /// table is walked at most once per page per generation.
    #[inline]
    fn lookup_pte(&self, page: VPage) -> Option<Pte> {
        if let Some(pte) = self.tlb.probe_uncounted(page) {
            self.tlb.count_hit();
            return Some(pte);
        }
        if self.tlb.enabled {
            self.tlb.misses.set(self.tlb.misses.get() + 1);
        }
        let pte = *self.table.lookup(page)?;
        self.tlb.fill(page, pte);
        Some(pte)
    }

    /// TLB-hit-only fast translation for an access fully contained in one
    /// page: returns the PTE when a *current* cached entry permits `kind`.
    /// Misses, page-straddling accesses and protection denials all return
    /// `None` and must take the slow (checked, fault-reporting) path.
    #[inline]
    pub(crate) fn fast_translate(&self, addr: VAddr, len: usize, kind: AccessKind) -> Option<Pte> {
        if len as u64 > PAGE_SIZE - addr.page_offset() {
            return None;
        }
        let pte = self.tlb.probe_uncounted(addr.page())?;
        if pte.prot.allows(kind) {
            // Only a *used* translation counts: a protection-denied probe
            // falls to the slow path, which does its own (single) counting.
            self.tlb.count_hit();
            Some(pte)
        } else {
            None
        }
    }

    /// Bytes of an access fully contained in one page (the scalar access
    /// path, crate-internal). `pte` must be the page's current translation.
    #[inline]
    pub(crate) fn page_bytes(&self, addr: VAddr, len: usize, pte: Pte) -> &[u8] {
        match &self.backing {
            Backing::Arena(a) => {
                let off = addr.page_offset() as usize;
                &a.bytes(pte.frame)[off..off + len]
            }
            Backing::Mmap(m) => m.bytes(addr, len),
        }
    }

    /// Mutable bytes of an access fully contained in one page (the scalar
    /// access path, crate-internal).
    #[inline]
    pub(crate) fn page_bytes_mut(&mut self, addr: VAddr, len: usize, pte: Pte) -> &mut [u8] {
        match &mut self.backing {
            Backing::Arena(a) => {
                let off = addr.page_offset() as usize;
                &mut a.bytes_mut(pte.frame)[off..off + len]
            }
            Backing::Mmap(m) => m.bytes_mut(addr, len),
        }
    }

    /// Arena frame bytes (table-walk backend only).
    fn arena_bytes(&self, id: FrameId) -> &[u8] {
        match &self.backing {
            Backing::Arena(a) => a.bytes(id),
            Backing::Mmap(_) => unreachable!("arena frame access on the mmap backend"),
        }
    }

    /// Mutable arena frame bytes (table-walk backend only).
    fn arena_bytes_mut(&mut self, id: FrameId) -> &mut [u8] {
        match &mut self.backing {
            Backing::Arena(a) => a.bytes_mut(id),
            Backing::Mmap(_) => unreachable!("arena frame access on the mmap backend"),
        }
    }

    // ----- mapping -----------------------------------------------------------

    /// Maps `len` bytes at exactly `addr` (like `mmap(MAP_FIXED)`), the
    /// primitive GMAC uses to mirror an accelerator range in system memory
    /// (paper §4.2). All pages get protection `prot`.
    ///
    /// # Errors
    /// Fails if `addr` is unaligned/non-canonical, `len` is zero, or the
    /// range overlaps an existing region.
    pub fn map_fixed(&mut self, addr: VAddr, len: u64, prot: Protection) -> MmuResult<RegionId> {
        if !addr.is_page_aligned() {
            return Err(MmuError::Misaligned(addr));
        }
        if len == 0 {
            return Err(MmuError::BadLength);
        }
        let len = VAddr(len).page_up().0;
        let end = addr.checked_add(len).ok_or(MmuError::OutOfVirtualSpace)?;
        if end.0 > VADDR_LIMIT {
            return Err(MmuError::OutOfVirtualSpace);
        }
        if self.overlaps(addr, len) {
            return Err(MmuError::Overlap { addr, len });
        }
        if let Backing::Mmap(m) = &mut self.backing {
            // Commit real pages (kernel/hole-punch zeroed — no explicit
            // zero-fill pass, unlike the arena's `zeroed_frame`). The user
            // view stays quarantined (`PROT_NONE`) until a fast-path
            // pointer escapes into the range and arms it.
            m.ensure_backed(addr, len)?;
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        for page in pages_covering(addr, len) {
            let frame = match &mut self.backing {
                Backing::Arena(a) => a.alloc(),
                // Bytes live in the host mapping; the PTE carries a sentinel.
                Backing::Mmap(_) => FrameId::SENTINEL,
            };
            let pte = Pte {
                frame,
                prot,
                region: id,
            };
            let prev = self.table.map(page, pte);
            debug_assert!(prev.is_none(), "overlap check missed a mapped page");
        }
        self.regions.insert(
            addr.0,
            Region {
                id,
                start: addr,
                len,
            },
        );
        // TLB invariant: any page-table mutation bumps the generation.
        self.tlb.invalidate();
        Ok(id)
    }

    /// Maps `len` bytes at a kernel-chosen address (like anonymous `mmap`),
    /// the fallback behind `adsmSafeAlloc`.
    ///
    /// # Errors
    /// Fails when the virtual address space is exhausted.
    pub fn map_anywhere(&mut self, len: u64, prot: Protection) -> MmuResult<(RegionId, VAddr)> {
        if len == 0 {
            return Err(MmuError::BadLength);
        }
        let len_rounded = VAddr(len).page_up().0;
        // Bump allocation with a guard page between regions; the 48-bit space
        // is large enough that reuse is unnecessary for simulation lifetimes.
        let mut addr = VAddr(self.mmap_cursor);
        while self.overlaps(addr, len_rounded) {
            let next = self
                .regions
                .range(addr.0..)
                .next()
                .map(|(_, r)| r.end().page_up() + PAGE_SIZE)
                .ok_or(MmuError::OutOfVirtualSpace)?;
            addr = next;
        }
        if addr.0 + len_rounded > VADDR_LIMIT {
            return Err(MmuError::OutOfVirtualSpace);
        }
        let id = self.map_fixed(addr, len_rounded, prot)?;
        self.mmap_cursor = (addr + len_rounded + PAGE_SIZE).0;
        Ok((id, addr))
    }

    /// Unmaps a region, releasing its frames.
    ///
    /// # Errors
    /// [`MmuError::InvalidRegion`] when the region does not exist.
    pub fn unmap_region(&mut self, id: RegionId) -> MmuResult<()> {
        let start = self
            .regions
            .iter()
            .find(|(_, r)| r.id == id)
            .map(|(&s, _)| s)
            .ok_or(MmuError::InvalidRegion(id))?;
        let region = self.regions.remove(&start).expect("region key vanished");
        // Any fast pointers into the region die with it: disarm so a future
        // tenant of these addresses starts unarmed (and quarantined).
        let stale: Vec<u64> = self
            .armed
            .range(..region.end().0)
            .rev()
            .take_while(|&(_, &e)| e > region.start.0)
            .map(|(&s, _)| s)
            .collect();
        for s in stale {
            self.armed.remove(&s);
        }
        for page in pages_covering(region.start, region.len) {
            let pte = self.table.unmap(page).expect("region page not mapped");
            if let Backing::Arena(a) = &mut self.backing {
                a.free(pte.frame);
            }
        }
        // TLB invariant: cached translations into the region must die now —
        // the frames just returned to the arena may be handed to a new
        // mapping immediately.
        self.tlb.invalidate();
        if let Backing::Mmap(m) = &mut self.backing {
            // Quarantine: punch the pages out (freeing them and guaranteeing
            // zeroes on remap) and return the user view to PROT_NONE.
            m.discard(region.start, region.len)?;
        }
        Ok(())
    }

    /// Changes protection of `[addr, addr+len)` (like `mprotect`). `addr`
    /// must be page aligned; `len` is rounded up to whole pages.
    ///
    /// # Errors
    /// Fails on misalignment or if any page in the range is unmapped.
    pub fn protect(&mut self, addr: VAddr, len: u64, prot: Protection) -> MmuResult<()> {
        if !addr.is_page_aligned() {
            return Err(MmuError::Misaligned(addr));
        }
        // Validate first so the operation is atomic.
        for page in pages_covering(addr, len) {
            if self.table.lookup(page).is_none() {
                return Err(MmuError::Unmapped(page.base()));
            }
        }
        for page in pages_covering(addr, len) {
            self.table.protect(page, prot);
        }
        // TLB invariant: a stale cached protection after `mprotect` must
        // never hit — the generation bump guarantees the next access walks
        // the table and observes (or faults on) the new permissions.
        self.tlb.invalidate();
        // Mirror the transition onto the real user view so raw fast-path
        // pointers obey exactly the permissions the table just recorded —
        // but only where such a pointer exists: unarmed ranges are only
        // ever reached through the runtime view and the checked path, so
        // a real `mprotect` there is a syscall spent guarding nobody (it
        // would dominate the per-block transitions of an eviction sweep).
        if self.armed_intersects(addr, len) {
            if let Backing::Mmap(m) = &self.backing {
                m.protect_user(addr, len, prot)?;
            }
        }
        Ok(())
    }

    // ----- introspection -------------------------------------------------------

    /// The region containing `addr`, if any.
    pub fn region_at(&self, addr: VAddr) -> Option<&Region> {
        self.regions
            .range(..=addr.0)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(addr))
    }

    /// Region by id.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.values().find(|r| r.id == id)
    }

    /// Number of mapped regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.table.mapped_pages()
    }

    /// Protection of the page containing `addr`, if mapped.
    pub fn protection_at(&self, addr: VAddr) -> Option<Protection> {
        self.table.lookup(addr.page()).map(|p| p.prot)
    }

    /// Total protection faults this address space has reported.
    pub fn faults_observed(&self) -> u64 {
        self.faults_observed
    }

    // ----- checked access -------------------------------------------------------

    /// Verifies that `[addr, addr+len)` is mapped and permits `kind`.
    ///
    /// # Errors
    /// Returns [`MmuError::Fault`] on the first protection violation (the
    /// simulated `SIGSEGV`) or [`MmuError::Unmapped`] for holes.
    pub fn check(&mut self, addr: VAddr, len: u64, kind: AccessKind) -> MmuResult<()> {
        if len == 0 {
            return Ok(());
        }
        for page in pages_covering(addr, len) {
            let pte = self
                .lookup_pte(page)
                .ok_or(MmuError::Unmapped(page.base()))?;
            if !pte.prot.allows(kind) {
                self.faults_observed += 1;
                return Err(MmuError::Fault(Fault {
                    addr: page.base().max(addr),
                    kind,
                    prot: pte.prot,
                    region: pte.region,
                }));
            }
        }
        Ok(())
    }

    /// Checked read: validates permissions for the whole range, then copies.
    ///
    /// # Errors
    /// Propagates [`Self::check`] errors; no partial copy occurs on failure.
    pub fn read_bytes(&mut self, addr: VAddr, out: &mut [u8]) -> MmuResult<()> {
        self.check(addr, out.len() as u64, AccessKind::Read)?;
        self.copy_out(addr, out)
    }

    /// Checked write: validates permissions for the whole range, then copies.
    ///
    /// # Errors
    /// Propagates [`Self::check`] errors; no partial copy occurs on failure.
    pub fn write_bytes(&mut self, addr: VAddr, src: &[u8]) -> MmuResult<()> {
        self.check(addr, src.len() as u64, AccessKind::Write)?;
        self.copy_in(addr, src)
    }

    /// Checked fill of `len` bytes with `value`.
    ///
    /// # Errors
    /// Propagates [`Self::check`] errors; no partial fill occurs on failure.
    pub fn fill(&mut self, addr: VAddr, value: u8, len: u64) -> MmuResult<()> {
        self.check(addr, len, AccessKind::Write)?;
        if let Backing::Mmap(m) = &self.backing {
            m.fill(addr, value, len);
            return Ok(());
        }
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = cur.page();
            let off = cur.page_offset() as usize;
            let n = ((PAGE_SIZE - cur.page_offset()).min(remaining)) as usize;
            let pte = self.lookup_pte(page).expect("checked page vanished");
            self.arena_bytes_mut(pte.frame)[off..off + n].fill(value);
            cur = cur + n as u64;
            remaining -= n as u64;
        }
        Ok(())
    }

    /// Unchecked ("kernel-mode") read used by the runtime itself, e.g. to
    /// stage DMA. Ignores protection but requires the range to be mapped.
    ///
    /// # Errors
    /// [`MmuError::Unmapped`] for holes.
    pub fn read_raw(&self, addr: VAddr, out: &mut [u8]) -> MmuResult<()> {
        self.require_mapped(addr, out.len() as u64)?;
        self.copy_out_ref(addr, out)
    }

    /// Unchecked ("kernel-mode") write used by the runtime itself, e.g. to
    /// land DMA results. Ignores protection but requires the range mapped.
    ///
    /// # Errors
    /// [`MmuError::Unmapped`] for holes.
    pub fn write_raw(&mut self, addr: VAddr, src: &[u8]) -> MmuResult<()> {
        self.require_mapped(addr, src.len() as u64)?;
        self.copy_in(addr, src)
    }

    /// Raw ("kernel-mode") read appending exactly `len` bytes to `out`'s
    /// spare capacity — no zero-fill pass over the destination, unlike
    /// reading into a pre-zeroed buffer (the multi-MB `read_resolved` path
    /// would otherwise touch every byte twice).
    ///
    /// # Errors
    /// [`MmuError::Unmapped`] for holes; nothing is appended on failure.
    pub fn read_raw_into(&self, addr: VAddr, len: u64, out: &mut Vec<u8>) -> MmuResult<()> {
        self.require_mapped(addr, len)?;
        if let Backing::Mmap(m) = &self.backing {
            // One memcpy per host-contiguous span instead of one per page.
            m.append_to(addr, len, out);
            return Ok(());
        }
        out.reserve(len as usize);
        let mut cur = addr;
        let mut remaining = len as usize;
        while remaining > 0 {
            let page = cur.page();
            let off = cur.page_offset() as usize;
            let n = (PAGE_SIZE as usize - off).min(remaining);
            let pte = self.lookup_pte(page).expect("mapped page vanished");
            out.extend_from_slice(&self.arena_bytes(pte.frame)[off..off + n]);
            cur = cur + n as u64;
            remaining -= n;
        }
        Ok(())
    }

    /// Convenience: raw read into a fresh buffer.
    ///
    /// # Errors
    /// [`MmuError::Unmapped`] for holes.
    pub fn gather(&self, addr: VAddr, len: u64) -> MmuResult<Vec<u8>> {
        let mut buf = Vec::with_capacity(len as usize);
        self.read_raw_into(addr, len, &mut buf)?;
        Ok(buf)
    }

    fn require_mapped(&self, addr: VAddr, len: u64) -> MmuResult<()> {
        if len == 0 {
            return Ok(());
        }
        // Regions are whole mapped ranges, so walking the region map is
        // O(regions covered · log n) instead of a lookup per page.
        let end = addr.checked_add(len).ok_or(MmuError::OutOfVirtualSpace)?;
        let mut cur = addr;
        while cur < end {
            let region = self
                .region_at(cur)
                .ok_or_else(|| MmuError::Unmapped(cur.page().base()))?;
            cur = region.end();
        }
        Ok(())
    }

    fn overlaps(&self, addr: VAddr, len: u64) -> bool {
        let end = addr.0 + len;
        // A region starting before `end` whose end exceeds `addr`.
        self.regions
            .range(..end)
            .next_back()
            .map(|(_, r)| r.end().0 > addr.0)
            .unwrap_or(false)
    }

    fn copy_out(&mut self, addr: VAddr, out: &mut [u8]) -> MmuResult<()> {
        self.copy_out_ref(addr, out)
    }

    pub(crate) fn copy_out_ref(&self, addr: VAddr, out: &mut [u8]) -> MmuResult<()> {
        if let Backing::Mmap(m) = &self.backing {
            // Callers validated the range (`check`/`require_mapped`), so the
            // whole copy collapses to one memcpy per host-contiguous span.
            m.copy_out(addr, out);
            return Ok(());
        }
        let mut cur = addr;
        let mut done = 0usize;
        while done < out.len() {
            let page = cur.page();
            let off = cur.page_offset() as usize;
            let n = (PAGE_SIZE as usize - off).min(out.len() - done);
            let pte = self
                .lookup_pte(page)
                .ok_or(MmuError::Unmapped(page.base()))?;
            out[done..done + n].copy_from_slice(&self.arena_bytes(pte.frame)[off..off + n]);
            cur = cur + n as u64;
            done += n;
        }
        Ok(())
    }

    fn copy_in(&mut self, addr: VAddr, src: &[u8]) -> MmuResult<()> {
        if let Backing::Mmap(m) = &self.backing {
            m.copy_in(addr, src);
            return Ok(());
        }
        let mut cur = addr;
        let mut done = 0usize;
        while done < src.len() {
            let page = cur.page();
            let off = cur.page_offset() as usize;
            let n = (PAGE_SIZE as usize - off).min(src.len() - done);
            let pte = self
                .lookup_pte(page)
                .ok_or(MmuError::Unmapped(page.base()))?;
            self.arena_bytes_mut(pte.frame)[off..off + n].copy_from_slice(&src[done..done + n]);
            cur = cur + n as u64;
            done += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW: Protection = Protection::ReadWrite;
    const RO: Protection = Protection::ReadOnly;

    #[test]
    fn map_fixed_and_rw_roundtrip() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x2_0000_0000);
        let id = vm.map_fixed(a, 8192, RW).unwrap();
        assert_eq!(vm.region_count(), 1);
        assert_eq!(vm.mapped_pages(), 2);
        assert_eq!(vm.region_at(a + 100).unwrap().id, id);

        vm.write_bytes(a + 4090, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // straddles pages
        let mut out = [0u8; 8];
        vm.read_bytes(a + 4090, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn map_fixed_rejects_overlap_and_misalignment() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x1000_0000);
        vm.map_fixed(a, 4 * PAGE_SIZE, RW).unwrap();
        // Exact overlap.
        assert!(matches!(
            vm.map_fixed(a, PAGE_SIZE, RW),
            Err(MmuError::Overlap { .. })
        ));
        // Partial overlap from below.
        assert!(matches!(
            vm.map_fixed(VAddr(a.0 - PAGE_SIZE), 2 * PAGE_SIZE, RW),
            Err(MmuError::Overlap { .. })
        ));
        // Tail overlap.
        assert!(matches!(
            vm.map_fixed(a + 3 * PAGE_SIZE, 2 * PAGE_SIZE, RW),
            Err(MmuError::Overlap { .. })
        ));
        // Adjacent is fine.
        assert!(vm.map_fixed(a + 4 * PAGE_SIZE, PAGE_SIZE, RW).is_ok());
        // Misaligned.
        assert!(matches!(
            vm.map_fixed(VAddr(0x123), PAGE_SIZE, RW),
            Err(MmuError::Misaligned(_))
        ));
        // Zero length.
        assert!(matches!(
            vm.map_fixed(VAddr(0x9000_0000), 0, RW),
            Err(MmuError::BadLength)
        ));
    }

    #[test]
    fn map_anywhere_finds_space() {
        let mut vm = AddressSpace::new();
        let (id1, a1) = vm.map_anywhere(10 * PAGE_SIZE, RW).unwrap();
        let (id2, a2) = vm.map_anywhere(PAGE_SIZE, RW).unwrap();
        assert_ne!(id1, id2);
        assert!(a2.0 >= a1.0 + 10 * PAGE_SIZE);
        vm.write_bytes(a2, &[9]).unwrap();
    }

    #[test]
    fn unmap_releases_frames_and_addresses() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x5000_0000);
        let id = vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        vm.unmap_region(id).unwrap();
        assert_eq!(vm.region_count(), 0);
        assert_eq!(vm.mapped_pages(), 0);
        assert!(matches!(
            vm.read_bytes(a, &mut [0u8; 1]),
            Err(MmuError::Unmapped(_))
        ));
        // Address can be mapped again.
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        // Unknown region id errors.
        assert!(matches!(
            vm.unmap_region(RegionId(999)),
            Err(MmuError::InvalidRegion(_))
        ));
    }

    #[test]
    fn read_only_pages_fault_on_write() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x3000_0000);
        vm.map_fixed(a, PAGE_SIZE, RO).unwrap();
        // Reads fine.
        vm.read_bytes(a, &mut [0u8; 16]).unwrap();
        // Writes fault with the right details.
        match vm.write_bytes(a + 8, &[1]) {
            Err(MmuError::Fault(f)) => {
                assert_eq!(f.addr, a + 8);
                assert_eq!(f.kind, AccessKind::Write);
                assert_eq!(f.prot, RO);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(vm.faults_observed(), 1);
    }

    #[test]
    fn none_pages_fault_on_read_and_write() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x3000_0000);
        vm.map_fixed(a, PAGE_SIZE, Protection::None).unwrap();
        assert!(matches!(
            vm.read_bytes(a, &mut [0u8; 1]),
            Err(MmuError::Fault(_))
        ));
        assert!(matches!(vm.write_bytes(a, &[0]), Err(MmuError::Fault(_))));
        assert_eq!(vm.faults_observed(), 2);
    }

    #[test]
    fn faults_are_atomic_no_partial_write() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x3000_0000);
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        vm.map_fixed(a + PAGE_SIZE, PAGE_SIZE, RO).unwrap();
        // Write spanning RW page then RO page: must fail without touching
        // the RW page.
        let res = vm.write_bytes(a + PAGE_SIZE - 4, &[7u8; 8]);
        assert!(matches!(res, Err(MmuError::Fault(_))));
        let mut probe = [0xAAu8; 4];
        vm.read_bytes(a + PAGE_SIZE - 4, &mut probe).unwrap();
        assert_eq!(probe, [0, 0, 0, 0], "no partial effects before the fault");
    }

    #[test]
    fn fault_addr_is_first_offending_byte() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x3000_0000);
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        vm.map_fixed(a + PAGE_SIZE, PAGE_SIZE, RO).unwrap();
        match vm.write_bytes(a + PAGE_SIZE - 4, &[7u8; 8]) {
            Err(MmuError::Fault(f)) => assert_eq!(f.addr, a + PAGE_SIZE),
            other => panic!("expected fault, got {other:?}"),
        }
        // Access starting mid-page reports the access start, not page base.
        match vm.write_bytes(a + PAGE_SIZE + 100, &[1]) {
            Err(MmuError::Fault(f)) => assert_eq!(f.addr, a + PAGE_SIZE + 100),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn protect_changes_permissions() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x4000_0000);
        vm.map_fixed(a, 4 * PAGE_SIZE, RO).unwrap();
        vm.protect(a + PAGE_SIZE, PAGE_SIZE, RW).unwrap();
        assert_eq!(vm.protection_at(a).unwrap(), RO);
        assert_eq!(vm.protection_at(a + PAGE_SIZE).unwrap(), RW);
        vm.write_bytes(a + PAGE_SIZE, &[1]).unwrap();
        assert!(matches!(vm.write_bytes(a, &[1]), Err(MmuError::Fault(_))));
        // Protect of unmapped range fails atomically.
        assert!(matches!(
            vm.protect(a + 3 * PAGE_SIZE, 2 * PAGE_SIZE, RW),
            Err(MmuError::Unmapped(_))
        ));
        assert_eq!(vm.protection_at(a + 3 * PAGE_SIZE).unwrap(), RO);
    }

    #[test]
    fn raw_access_ignores_protection() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x4000_0000);
        vm.map_fixed(a, PAGE_SIZE, Protection::None).unwrap();
        vm.write_raw(a, &[5, 6, 7]).unwrap();
        let mut out = [0u8; 3];
        vm.read_raw(a, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7]);
        assert_eq!(vm.gather(a, 3).unwrap(), vec![5, 6, 7]);
        assert_eq!(vm.faults_observed(), 0, "raw access never faults");
        // But raw access still requires mappings.
        assert!(matches!(
            vm.write_raw(a + PAGE_SIZE, &[1]),
            Err(MmuError::Unmapped(_))
        ));
    }

    #[test]
    fn fill_respects_protection_and_page_boundaries() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x6000_0000);
        vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        vm.fill(a + 4000, 0xCC, 200).unwrap(); // crosses the boundary
        let mut out = [0u8; 200];
        vm.read_bytes(a + 4000, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xCC));
        vm.protect(a, PAGE_SIZE, RO).unwrap();
        assert!(matches!(vm.fill(a, 0xDD, 8), Err(MmuError::Fault(_))));
    }

    #[test]
    fn region_at_boundaries() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x7000_0000);
        let id = vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        assert_eq!(vm.region_at(a).unwrap().id, id);
        assert_eq!(vm.region_at(a + 2 * PAGE_SIZE - 1).unwrap().id, id);
        assert!(vm.region_at(a + 2 * PAGE_SIZE).is_none());
        assert!(vm.region_at(VAddr(a.0 - 1)).is_none());
        assert_eq!(vm.region(id).unwrap().len, 2 * PAGE_SIZE);
        assert!(vm.region(RegionId(999)).is_none());
    }

    #[test]
    fn zero_length_check_is_ok() {
        let mut vm = AddressSpace::new();
        assert!(vm.check(VAddr(0x123), 0, AccessKind::Write).is_ok());
    }

    #[test]
    fn tlb_hits_after_first_walk() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        assert!(vm.tlb_enabled());
        vm.check(a, 4, AccessKind::Read).unwrap(); // miss + fill
        let (h0, m0) = (vm.tlb_hits(), vm.tlb_misses());
        assert_eq!(m0, 1);
        vm.check(a, 4, AccessKind::Read).unwrap(); // hit
        vm.check(a + 8, 4, AccessKind::Write).unwrap(); // same page, hit
        assert_eq!(vm.tlb_hits(), h0 + 2);
        assert_eq!(vm.tlb_misses(), m0);
    }

    #[test]
    fn tlb_stale_entry_after_protect_still_faults() {
        // The generation-counter invariant: a cached ReadWrite translation
        // must not let a store slip past a later mprotect downgrade.
        let mut vm = AddressSpace::new();
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        vm.write_bytes(a, &[1]).unwrap(); // caches the RW translation
        let gen_before = vm.tlb_generation();
        vm.protect(a, PAGE_SIZE, RO).unwrap();
        assert!(vm.tlb_generation() > gen_before, "protect bumps generation");
        assert!(matches!(vm.write_bytes(a, &[2]), Err(MmuError::Fault(_))));
        assert_eq!(vm.faults_observed(), 1);
        // And a stale entry after unmap must report Unmapped, not read a
        // recycled frame.
        let id = vm.region_at(a).unwrap().id;
        vm.read_bytes(a, &mut [0u8; 1]).unwrap(); // cache the RO translation
        vm.unmap_region(id).unwrap();
        assert!(matches!(
            vm.read_bytes(a, &mut [0u8; 1]),
            Err(MmuError::Unmapped(_))
        ));
    }

    #[test]
    fn tlb_disabled_behaves_identically_without_counters() {
        let mut vm = AddressSpace::new();
        vm.set_tlb_enabled(false);
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        vm.write_bytes(a + 4090, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut out = [0u8; 8];
        vm.read_bytes(a + 4090, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(vm.tlb_hits(), 0);
        assert_eq!(vm.tlb_misses(), 0);
    }

    #[test]
    fn tlb_direct_mapped_conflicts_evict() {
        // Pages 64 entries apart share a TLB slot; both still translate
        // correctly through eviction churn.
        let mut vm = AddressSpace::new();
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, 65 * PAGE_SIZE, RW).unwrap();
        let conflicting = a + 64 * PAGE_SIZE; // same direct-mapped slot
        vm.write_bytes(a, &[0xAA]).unwrap();
        vm.write_bytes(conflicting, &[0xBB]).unwrap();
        let mut x = [0u8; 1];
        vm.read_bytes(a, &mut x).unwrap();
        assert_eq!(x, [0xAA]);
        vm.read_bytes(conflicting, &mut x).unwrap();
        assert_eq!(x, [0xBB]);
    }

    #[cfg(target_os = "linux")]
    fn mmap_space() -> AddressSpace {
        AddressSpace::new_mmap(4 * crate::backing::CHUNK_SIZE).expect("mmap backing")
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_backend_basic_parity() {
        let mut vm = mmap_space();
        assert!(vm.is_mmap_backed());
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, 8192, RW).unwrap();
        vm.write_bytes(a + 4090, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut out = [0u8; 8];
        vm.read_bytes(a + 4090, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        // Fresh pages read zero with no explicit zero-fill pass.
        let mut z = [0xFFu8; 16];
        vm.read_bytes(a, &mut z).unwrap();
        assert_eq!(z, [0u8; 16]);
        // Raw access ignores protection, checked access faults identically.
        vm.protect(a, PAGE_SIZE, RO).unwrap();
        assert!(matches!(vm.write_bytes(a, &[1]), Err(MmuError::Fault(_))));
        assert_eq!(vm.faults_observed(), 1);
        vm.write_raw(a, &[9]).unwrap();
        assert_eq!(vm.gather(a, 1).unwrap(), vec![9]);
        // fill + read_raw_into work through the span paths.
        vm.fill(a + PAGE_SIZE, 0xCC, 100).unwrap();
        let mut buf = Vec::new();
        vm.read_raw_into(a + PAGE_SIZE, 100, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xCC));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_unmap_remap_reads_zero() {
        let mut vm = mmap_space();
        let a = VAddr(0x5000_0000);
        let id = vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        vm.write_bytes(a, &[0xAB; 64]).unwrap();
        vm.unmap_region(id).unwrap();
        assert!(matches!(
            vm.read_bytes(a, &mut [0u8; 1]),
            Err(MmuError::Unmapped(_))
        ));
        vm.map_fixed(a, PAGE_SIZE, RW).unwrap();
        let mut out = [0xEEu8; 64];
        vm.read_bytes(a, &mut out).unwrap();
        assert_eq!(out, [0u8; 64], "remapped pages must read zero");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn fast_base_requires_coverage_and_contiguity() {
        let mut vm = mmap_space();
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, 4 * PAGE_SIZE, RW).unwrap();
        assert!(vm.fast_base(a, 4 * PAGE_SIZE).is_some());
        assert!(vm.fast_base(a, 0).is_none(), "zero length");
        assert!(
            vm.fast_base(a, 5 * PAGE_SIZE).is_none(),
            "extends past the region"
        );
        assert!(vm.fast_base(a + 5 * PAGE_SIZE, 8).is_none(), "unmapped");
        // The pointer reads the very bytes checked access stored.
        vm.store::<u32>(a + 8, 0xFEED).unwrap();
        let p = vm.fast_base(a, 4 * PAGE_SIZE).unwrap();
        // SAFETY: pages are ReadWrite in the user view and backed.
        let val = unsafe { p.add(8).cast::<u32>().read_unaligned() };
        assert_eq!(val, 0xFEED);
        // The arena backend never vends pointers or a reservation.
        let mut arena = AddressSpace::new();
        arena.map_fixed(a, PAGE_SIZE, RW).unwrap();
        assert!(arena.fast_base(a, 8).is_none());
        assert!(arena.host_reservation().is_none());
        assert!(vm.host_reservation().is_some());
    }

    #[test]
    fn read_raw_into_appends_without_zero_fill() {
        let mut vm = AddressSpace::new();
        let a = VAddr(0x2_0000_0000);
        vm.map_fixed(a, 2 * PAGE_SIZE, RW).unwrap();
        vm.write_raw(a, &[7u8; 8192]).unwrap();
        let mut out = vec![0xEEu8; 4]; // pre-existing bytes must survive
        vm.read_raw_into(a + 100, 5000, &mut out).unwrap();
        assert_eq!(out.len(), 5004);
        assert_eq!(&out[..4], &[0xEE; 4]);
        assert!(out[4..].iter().all(|&b| b == 7));
        // Failure appends nothing.
        let before = out.len();
        assert!(matches!(
            vm.read_raw_into(a + 2 * PAGE_SIZE - 4, 16, &mut out),
            Err(MmuError::Unmapped(_))
        ));
        assert_eq!(out.len(), before, "no partial append on error");
    }
}
