//! Typed access paths over the software MMU.
//!
//! The CPU side of a GMAC application reads and writes shared objects through
//! these helpers; each call performs the same protection check a hardware
//! load/store would, so coherence-protocol permission changes behave exactly
//! like `mprotect` on the paper's platform.

use crate::addr::VAddr;
use crate::fault::MmuResult;
use crate::prot::AccessKind;
use crate::space::AddressSpace;

/// A plain-old-data scalar that can cross the softmmu boundary.
///
/// Implemented for the primitive numeric types; all encodings are
/// little-endian (the paper assumes homogeneous data representation between
/// CPU and accelerator, §6.2).
///
/// # Safety
/// `SIZE` must equal `size_of::<Self>()`, and when [`Scalar::RAW_COMPAT`]
/// is `true` the implementor additionally guarantees that its in-memory
/// representation is exactly its little-endian encoding — no padding, no
/// niches, every bit pattern valid — so bulk paths and the mmap fast path
/// may `memcpy`/load it instead of encoding element by element.
pub unsafe trait Scalar: Copy + Sized {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Whether the in-memory representation *is* the little-endian encoding
    /// (see the trait's safety contract). `false` forces the portable
    /// per-element encode/decode everywhere.
    const RAW_COMPAT: bool = false;

    /// Encodes into `out` (exactly `SIZE` bytes).
    fn store_le(self, out: &mut [u8]);

    /// Decodes from `src` (exactly `SIZE` bytes).
    fn load_le(src: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        // SAFETY: primitive numeric types have no padding or niches, accept
        // any bit pattern, and on little-endian hosts their representation
        // is their little-endian encoding.
        unsafe impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const RAW_COMPAT: bool = cfg!(target_endian = "little");
            fn store_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn load_le(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().expect("scalar size mismatch"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl AddressSpace {
    /// Checked typed load at `addr`.
    ///
    /// On a TLB hit the load is a single probe + frame copy; misses,
    /// page-straddling accesses and protection denials fall back to the
    /// checked slow path (which reports faults and refills the TLB).
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn load<T: Scalar>(&mut self, addr: VAddr) -> MmuResult<T> {
        if let Some(pte) = self.fast_translate(addr, T::SIZE, AccessKind::Read) {
            return Ok(T::load_le(self.page_bytes(addr, T::SIZE, pte)));
        }
        let mut buf = [0u8; 8];
        let buf = &mut buf[..T::SIZE];
        self.read_bytes(addr, buf)?;
        Ok(T::load_le(buf))
    }

    /// Checked typed store at `addr` (TLB fast path like [`Self::load`]).
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn store<T: Scalar>(&mut self, addr: VAddr, value: T) -> MmuResult<()> {
        if let Some(pte) = self.fast_translate(addr, T::SIZE, AccessKind::Write) {
            value.store_le(self.page_bytes_mut(addr, T::SIZE, pte));
            return Ok(());
        }
        let mut buf = [0u8; 8];
        let buf = &mut buf[..T::SIZE];
        value.store_le(buf);
        self.write_bytes(addr, buf)
    }

    /// Checked load of `n` consecutive scalars starting at `addr`.
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn load_slice<T: Scalar>(&mut self, addr: VAddr, n: usize) -> MmuResult<Vec<T>> {
        let len = n * T::SIZE;
        if T::RAW_COMPAT {
            self.check(addr, len as u64, AccessKind::Read)?;
            let mut out: Vec<T> = Vec::with_capacity(n);
            // SAFETY: the spare capacity is viewed as bytes and filled
            // completely by `copy_out_ref` (the range was just checked);
            // RAW_COMPAT scalars accept any bit pattern, so setting the
            // length afterwards covers only initialized, valid elements.
            unsafe {
                let dst = std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<u8>(), len);
                self.copy_out_ref(addr, dst)?;
                out.set_len(n);
            }
            return Ok(out);
        }
        let mut bytes = vec![0u8; len];
        self.read_bytes(addr, &mut bytes)?;
        Ok(bytes.chunks_exact(T::SIZE).map(T::load_le).collect())
    }

    /// Checked store of consecutive scalars starting at `addr`.
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn store_slice<T: Scalar>(&mut self, addr: VAddr, values: &[T]) -> MmuResult<()> {
        if T::RAW_COMPAT {
            // SAFETY: RAW_COMPAT guarantees the in-memory representation is
            // the padding-free little-endian encoding, so the slice can be
            // written as raw bytes without an intermediate encode pass.
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    values.as_ptr().cast::<u8>(),
                    std::mem::size_of_val(values),
                )
            };
            return self.write_bytes(addr, bytes);
        }
        let mut bytes = vec![0u8; values.len() * T::SIZE];
        for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(values) {
            v.store_le(chunk);
        }
        self.write_bytes(addr, &bytes)
    }
}

/// Encodes a scalar slice to little-endian bytes (host-private buffers).
/// A [`Scalar::RAW_COMPAT`] element type makes this a single `memcpy`.
pub fn to_bytes<T: Scalar>(values: &[T]) -> Vec<u8> {
    let len = values.len() * T::SIZE;
    if T::RAW_COMPAT {
        let mut bytes = Vec::with_capacity(len);
        // SAFETY: RAW_COMPAT scalars have no padding and their in-memory
        // representation is exactly their little-endian encoding; the copy
        // initializes the whole reserved prefix before the length is set.
        unsafe {
            std::ptr::copy_nonoverlapping(values.as_ptr().cast::<u8>(), bytes.as_mut_ptr(), len);
            bytes.set_len(len);
        }
        return bytes;
    }
    let mut bytes = vec![0u8; len];
    for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(values) {
        v.store_le(chunk);
    }
    bytes
}

/// Decodes little-endian bytes into a scalar vector.
/// A [`Scalar::RAW_COMPAT`] element type makes this a single `memcpy`.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the scalar size.
pub fn from_bytes<T: Scalar>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length not a scalar multiple"
    );
    let n = bytes.len() / T::SIZE;
    if T::RAW_COMPAT {
        let mut out: Vec<T> = Vec::with_capacity(n);
        // SAFETY: any bit pattern is a valid RAW_COMPAT scalar and the copy
        // initializes every element counted by the subsequent `set_len`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
            out.set_len(n);
        }
        return out;
    }
    bytes.chunks_exact(T::SIZE).map(T::load_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prot::Protection;

    #[test]
    fn typed_roundtrip_all_types() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(4096, Protection::ReadWrite).unwrap();
        vm.store::<u8>(a, 0xAB).unwrap();
        assert_eq!(vm.load::<u8>(a).unwrap(), 0xAB);
        vm.store::<i16>(a, -5).unwrap();
        assert_eq!(vm.load::<i16>(a).unwrap(), -5);
        vm.store::<u32>(a, 0xDEAD_BEEF).unwrap();
        assert_eq!(vm.load::<u32>(a).unwrap(), 0xDEAD_BEEF);
        vm.store::<f32>(a, -2.5).unwrap();
        assert_eq!(vm.load::<f32>(a).unwrap(), -2.5);
        vm.store::<f64>(a, 1e300).unwrap();
        assert_eq!(vm.load::<f64>(a).unwrap(), 1e300);
        vm.store::<i64>(a, i64::MIN).unwrap();
        assert_eq!(vm.load::<i64>(a).unwrap(), i64::MIN);
    }

    #[test]
    fn slice_roundtrip_across_pages() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(8192, Protection::ReadWrite).unwrap();
        let data: Vec<f32> = (0..1500).map(|i| i as f32 * 0.5).collect();
        vm.store_slice(a + 100, &data).unwrap(); // spans both pages
        assert_eq!(vm.load_slice::<f32>(a + 100, 1500).unwrap(), data);
    }

    #[test]
    fn typed_access_respects_protection() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(4096, Protection::ReadOnly).unwrap();
        assert!(vm.load::<u32>(a).is_ok());
        assert!(vm.store::<u32>(a, 1).is_err());
    }

    #[test]
    fn bytes_helpers_roundtrip() {
        let vals = [1.5f64, -2.25, 1e-9];
        let bytes = to_bytes(&vals);
        assert_eq!(bytes.len(), 24);
        assert_eq!(from_bytes::<f64>(&bytes), vals);
    }

    #[test]
    #[should_panic(expected = "byte length not a scalar multiple")]
    fn from_bytes_rejects_ragged_input() {
        let _ = from_bytes::<u32>(&[1, 2, 3]);
    }
}
