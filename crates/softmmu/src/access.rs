//! Typed access paths over the software MMU.
//!
//! The CPU side of a GMAC application reads and writes shared objects through
//! these helpers; each call performs the same protection check a hardware
//! load/store would, so coherence-protocol permission changes behave exactly
//! like `mprotect` on the paper's platform.

use crate::addr::VAddr;
use crate::fault::MmuResult;
use crate::prot::AccessKind;
use crate::space::AddressSpace;

/// A plain-old-data scalar that can cross the softmmu boundary.
///
/// Implemented for the primitive numeric types; all encodings are
/// little-endian (the paper assumes homogeneous data representation between
/// CPU and accelerator, §6.2).
pub trait Scalar: Copy + Sized {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Encodes into `out` (exactly `SIZE` bytes).
    fn store_le(self, out: &mut [u8]);

    /// Decodes from `src` (exactly `SIZE` bytes).
    fn load_le(src: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn store_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn load_le(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().expect("scalar size mismatch"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl AddressSpace {
    /// Checked typed load at `addr`.
    ///
    /// On a TLB hit the load is a single probe + frame copy; misses,
    /// page-straddling accesses and protection denials fall back to the
    /// checked slow path (which reports faults and refills the TLB).
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn load<T: Scalar>(&mut self, addr: VAddr) -> MmuResult<T> {
        if let Some(pte) = self.fast_translate(addr, T::SIZE, AccessKind::Read) {
            let off = addr.page_offset() as usize;
            return Ok(T::load_le(&self.frame_bytes(pte)[off..off + T::SIZE]));
        }
        let mut buf = [0u8; 8];
        let buf = &mut buf[..T::SIZE];
        self.read_bytes(addr, buf)?;
        Ok(T::load_le(buf))
    }

    /// Checked typed store at `addr` (TLB fast path like [`Self::load`]).
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn store<T: Scalar>(&mut self, addr: VAddr, value: T) -> MmuResult<()> {
        if let Some(pte) = self.fast_translate(addr, T::SIZE, AccessKind::Write) {
            let off = addr.page_offset() as usize;
            value.store_le(&mut self.frame_bytes_mut(pte)[off..off + T::SIZE]);
            return Ok(());
        }
        let mut buf = [0u8; 8];
        let buf = &mut buf[..T::SIZE];
        value.store_le(buf);
        self.write_bytes(addr, buf)
    }

    /// Checked load of `n` consecutive scalars starting at `addr`.
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn load_slice<T: Scalar>(&mut self, addr: VAddr, n: usize) -> MmuResult<Vec<T>> {
        let mut bytes = vec![0u8; n * T::SIZE];
        self.read_bytes(addr, &mut bytes)?;
        Ok(bytes.chunks_exact(T::SIZE).map(T::load_le).collect())
    }

    /// Checked store of consecutive scalars starting at `addr`.
    ///
    /// # Errors
    /// Propagates protection faults and unmapped-page errors.
    pub fn store_slice<T: Scalar>(&mut self, addr: VAddr, values: &[T]) -> MmuResult<()> {
        let mut bytes = vec![0u8; values.len() * T::SIZE];
        for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(values) {
            v.store_le(chunk);
        }
        self.write_bytes(addr, &bytes)
    }
}

/// Encodes a scalar slice to little-endian bytes (host-private buffers).
pub fn to_bytes<T: Scalar>(values: &[T]) -> Vec<u8> {
    let mut bytes = vec![0u8; values.len() * T::SIZE];
    for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(values) {
        v.store_le(chunk);
    }
    bytes
}

/// Decodes little-endian bytes into a scalar vector.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the scalar size.
pub fn from_bytes<T: Scalar>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length not a scalar multiple"
    );
    bytes.chunks_exact(T::SIZE).map(T::load_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prot::Protection;

    #[test]
    fn typed_roundtrip_all_types() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(4096, Protection::ReadWrite).unwrap();
        vm.store::<u8>(a, 0xAB).unwrap();
        assert_eq!(vm.load::<u8>(a).unwrap(), 0xAB);
        vm.store::<i16>(a, -5).unwrap();
        assert_eq!(vm.load::<i16>(a).unwrap(), -5);
        vm.store::<u32>(a, 0xDEAD_BEEF).unwrap();
        assert_eq!(vm.load::<u32>(a).unwrap(), 0xDEAD_BEEF);
        vm.store::<f32>(a, -2.5).unwrap();
        assert_eq!(vm.load::<f32>(a).unwrap(), -2.5);
        vm.store::<f64>(a, 1e300).unwrap();
        assert_eq!(vm.load::<f64>(a).unwrap(), 1e300);
        vm.store::<i64>(a, i64::MIN).unwrap();
        assert_eq!(vm.load::<i64>(a).unwrap(), i64::MIN);
    }

    #[test]
    fn slice_roundtrip_across_pages() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(8192, Protection::ReadWrite).unwrap();
        let data: Vec<f32> = (0..1500).map(|i| i as f32 * 0.5).collect();
        vm.store_slice(a + 100, &data).unwrap(); // spans both pages
        assert_eq!(vm.load_slice::<f32>(a + 100, 1500).unwrap(), data);
    }

    #[test]
    fn typed_access_respects_protection() {
        let mut vm = AddressSpace::new();
        let (_, a) = vm.map_anywhere(4096, Protection::ReadOnly).unwrap();
        assert!(vm.load::<u32>(a).is_ok());
        assert!(vm.store::<u32>(a, 1).is_err());
    }

    #[test]
    fn bytes_helpers_roundtrip() {
        let vals = [1.5f64, -2.25, 1e-9];
        let bytes = to_bytes(&vals);
        assert_eq!(bytes.len(), 24);
        assert_eq!(from_bytes::<f64>(&bytes), vals);
    }

    #[test]
    #[should_panic(expected = "byte length not a scalar multiple")]
    fn from_bytes_rejects_ragged_input() {
        let _ = from_bytes::<u32>(&[1, 2, 3]);
    }
}
