//! Virtual addresses and page geometry.

use std::fmt;
use std::ops::{Add, Sub};

/// Page size in bytes (4 KiB, matching the paper's x86-64 Linux host).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Width of the simulated virtual address space (48-bit canonical x86-64).
pub const VADDR_BITS: u32 = 48;

/// Highest valid virtual address + 1.
pub const VADDR_LIMIT: u64 = 1 << VADDR_BITS;

/// A virtual address in the simulated host address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// The null address.
    pub const NULL: VAddr = VAddr(0);

    /// Rounds down to the containing page boundary.
    pub fn page_down(self) -> VAddr {
        VAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Rounds up to the next page boundary.
    pub fn page_up(self) -> VAddr {
        VAddr((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// True when the address is page aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// The page containing this address.
    pub fn page(self) -> VPage {
        VPage(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// True if the address is within the canonical range.
    pub fn is_canonical(self) -> bool {
        self.0 < VADDR_LIMIT
    }

    /// Checked addition.
    pub fn checked_add(self, bytes: u64) -> Option<VAddr> {
        self.0.checked_add(bytes).map(VAddr)
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0 + rhs)
    }
}

impl Sub<VAddr> for VAddr {
    type Output = u64;
    fn sub(self, rhs: VAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Sub<u64> for VAddr {
    type Output = VAddr;
    fn sub(self, rhs: u64) -> VAddr {
        VAddr(self.0 - rhs)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VAddr {
    fn from(v: u64) -> Self {
        VAddr(v)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VPage(pub u64);

impl VPage {
    /// First byte of the page.
    pub fn base(self) -> VAddr {
        VAddr(self.0 << PAGE_SHIFT)
    }

    /// The next page.
    pub fn next(self) -> VPage {
        VPage(self.0 + 1)
    }
}

impl fmt::Display for VPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// Iterates over the pages covering `[addr, addr + len)`.
pub fn pages_covering(addr: VAddr, len: u64) -> impl Iterator<Item = VPage> {
    let first = addr.page().0;
    let last = if len == 0 {
        first
    } else {
        (addr + (len - 1)).page().0 + 1
    };
    (first..last).map(VPage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_rounding() {
        let a = VAddr(0x1234);
        assert_eq!(a.page_down(), VAddr(0x1000));
        assert_eq!(a.page_up(), VAddr(0x2000));
        assert_eq!(VAddr(0x2000).page_up(), VAddr(0x2000));
        assert!(VAddr(0x3000).is_page_aligned());
        assert!(!a.is_page_aligned());
        assert_eq!(a.page_offset(), 0x234);
    }

    #[test]
    fn page_base_roundtrip() {
        let a = VAddr(0x5678_9abc);
        assert_eq!(a.page().base(), a.page_down());
        assert_eq!(a.page().next().base(), a.page_down() + PAGE_SIZE);
    }

    #[test]
    fn canonical_range() {
        assert!(VAddr(0).is_canonical());
        assert!(VAddr(VADDR_LIMIT - 1).is_canonical());
        assert!(!VAddr(VADDR_LIMIT).is_canonical());
    }

    #[test]
    fn pages_covering_ranges() {
        // Empty range: no pages.
        assert_eq!(pages_covering(VAddr(0x1000), 0).count(), 0);
        // Within one page.
        let pages: Vec<_> = pages_covering(VAddr(0x1010), 16).collect();
        assert_eq!(pages, vec![VPage(1)]);
        // Straddling a boundary.
        let pages: Vec<_> = pages_covering(VAddr(0x1ff8), 16).collect();
        assert_eq!(pages, vec![VPage(1), VPage(2)]);
        // Exactly one page, aligned.
        let pages: Vec<_> = pages_covering(VAddr(0x2000), PAGE_SIZE).collect();
        assert_eq!(pages, vec![VPage(2)]);
    }

    #[test]
    fn vaddr_arithmetic() {
        let a = VAddr(0x1000);
        assert_eq!(a + 0x10, VAddr(0x1010));
        assert_eq!(VAddr(0x1010) - a, 0x10);
        assert_eq!(a.checked_add(u64::MAX), None);
        assert_eq!(VAddr::from(0x42u64), VAddr(0x42));
        assert_eq!(format!("{a}"), "0x1000");
    }
}
