//! A medical-imaging pipeline: MRI reconstruction inputs stream from disk
//! *directly into shared memory* — the paper's "peer DMA illusion" (§3.1
//! benefit 3, §4.4 I/O interposition).
//!
//! The application never copies between I/O buffers and accelerator memory:
//! shared pointers are handed straight to the read()/write() calls.
//!
//! Run with: `cargo run --release --example mri_pipeline`

use adsm::gmac::Protocol;
use adsm::hetsim::Category;
use adsm::workloads::mriq::MriQ;
use adsm::workloads::{run_variant, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scan = MriQ { k: 1024, x: 16384 };
    println!(
        "MRI-Q reconstruction: {} k-space samples x {} voxels",
        scan.k, scan.x
    );
    println!();

    let cuda = run_variant(&scan, Variant::Cuda)?;
    let gmac = run_variant(&scan, Variant::Gmac(Protocol::Rolling))?;
    assert_eq!(
        cuda.digest, gmac.digest,
        "both variants reconstruct identical images"
    );

    println!("{:<24} {:>12} {:>12}", "", "CUDA-style", "GMAC/ADSM");
    println!(
        "{:<24} {:>12} {:>12}",
        "total time",
        cuda.elapsed.to_string(),
        gmac.elapsed.to_string()
    );
    for cat in [
        Category::IoRead,
        Category::IoWrite,
        Category::Gpu,
        Category::Copy,
        Category::Signal,
    ] {
        println!(
            "{:<24} {:>12} {:>12}",
            cat.label(),
            cuda.ledger.get(cat).to_string(),
            gmac.ledger.get(cat).to_string()
        );
    }
    println!();
    println!(
        "identical outputs (digest {:#018x}), comparable time, but the GMAC version",
        gmac.digest
    );
    println!("passes shared pointers straight to read()/write() — no staging copies in");
    println!("application code. Paper Fig 10: mri-q is I/O-bound and 'would benefit");
    println!("from hardware that supports peer DMA'.");
    Ok(())
}
