//! Quickstart: the ADSM programming model in one page.
//!
//! Compare with the paper's Figure 3 (CUDA: double pointers, explicit
//! `cudaMemcpy`) vs Figure 4 (ADSM: one pointer, zero explicit transfers).
//!
//! Run with: `cargo run --example quickstart`

use adsm::gmac::{Context, GmacConfig, Param, Protocol};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use std::sync::Arc;

/// A SAXPY kernel: `y[i] = a * x[i] + y[i]`.
#[derive(Debug)]
struct Saxpy;

impl Kernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(2)?;
        let a = args.f64(3)? as f32;
        let x = read_f32_slice(mem, args.ptr(0)?, n)?;
        let mut y = read_f32_slice(mem, args.ptr(1)?, n)?;
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += a * xi;
        }
        write_f32_slice(mem, args.ptr(1)?, &y)?;
        Ok(KernelProfile::new(2.0 * n as f64, 12.0 * n as f64))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 1 << 20;

    // A simulated desktop: Opteron host + NVIDIA G280 on PCIe 2.0 (the
    // paper's experimental platform).
    let mut platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Saxpy));

    // GMAC context with the rolling-update protocol (the paper's best).
    let mut ctx = Context::new(platform, GmacConfig::default().protocol(Protocol::Rolling));

    // adsmAlloc: ONE pointer, valid on the CPU *and* the accelerator.
    let x = ctx.alloc((N * 4) as u64)?;
    let y = ctx.alloc((N * 4) as u64)?;

    // The CPU initialises shared objects directly — no cudaMemcpy anywhere.
    ctx.store_slice(x, &vec![1.0f32; N])?;
    ctx.store_slice(y, &vec![2.0f32; N])?;

    // adsmCall + adsmSync: objects are released to the accelerator and
    // acquired back automatically (release consistency, §3.3).
    let params = [
        Param::Shared(x),
        Param::Shared(y),
        Param::U64(N as u64),
        Param::F64(3.0),
    ];
    ctx.call("saxpy", LaunchDims::for_elements(N as u64, 256), &params)?;
    ctx.sync()?;

    // Read the result through the same pointer. The first touch of each
    // block faults, fetches, and the access retries — invisible here.
    let result: f32 = ctx.load(y)?;
    assert_eq!(result, 2.0 + 3.0 * 1.0);

    println!("saxpy({N} elements) done: y[0] = {result}");
    println!("virtual time      : {}", ctx.platform().elapsed());
    println!(
        "transfers         : {} H2D, {} D2H",
        adsm::hetsim::stats::fmt_bytes(ctx.transfers().h2d_bytes),
        adsm::hetsim::stats::fmt_bytes(ctx.transfers().d2h_bytes)
    );
    println!("faults handled    : {}", ctx.counters().faults());
    println!("eager evictions   : {}", ctx.counters().eager_evictions);

    // Structured diagnostics (gmacProfile-style observability).
    println!();
    print!("{}", ctx.report());

    ctx.free(x)?;
    ctx.free(y)?;
    Ok(())
}
