//! Quickstart: the ADSM programming model in one page.
//!
//! Compare with the paper's Figure 3 (CUDA: double pointers, explicit
//! `cudaMemcpy`) vs Figure 4 (ADSM: one pointer, zero explicit transfers).
//! The runtime is a process-wide [`Gmac`]; each host thread talks to it
//! through a cheap [`Session`] handle, and typed `Shared<f32>` buffers
//! replace raw pointer arithmetic.
//!
//! Run with: `cargo run --example quickstart`
//!
//! [`Gmac`]: adsm::gmac::Gmac
//! [`Session`]: adsm::gmac::Session

use adsm::gmac::{Gmac, GmacConfig, Param, Protocol};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use std::sync::Arc;

/// A SAXPY kernel: `y[i] = a * x[i] + y[i]`.
#[derive(Debug)]
struct Saxpy;

impl Kernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(2)?;
        let a = args.f64(3)? as f32;
        let x = read_f32_slice(mem, args.ptr(0)?, n)?;
        let mut y = read_f32_slice(mem, args.ptr(1)?, n)?;
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += a * xi;
        }
        write_f32_slice(mem, args.ptr(1)?, &y)?;
        Ok(KernelProfile::new(2.0 * n as f64, 12.0 * n as f64))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 1 << 20;

    // A simulated desktop: Opteron host + NVIDIA G280 on PCIe 2.0 (the
    // paper's experimental platform).
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Saxpy));

    // The shared GMAC runtime with the rolling-update protocol (the paper's
    // best), and this thread's session handle on it.
    let gmac = Gmac::new(platform, GmacConfig::default().protocol(Protocol::Rolling));
    let session = gmac.session();

    // adsmAlloc, typed: ONE buffer handle, valid on the CPU *and* the
    // accelerator, element count included.
    let x = session.alloc_typed::<f32>(N)?;
    let y = session.alloc_typed::<f32>(N)?;

    // The CPU initialises shared objects directly — no cudaMemcpy anywhere.
    x.write_slice(&vec![1.0f32; N])?;
    y.write_slice(&vec![2.0f32; N])?;

    // adsmCall + adsmSync: objects are released to the accelerator and
    // acquired back automatically (release consistency, §3.3).
    let params = [
        Param::from(&x),
        Param::from(&y),
        Param::U64(N as u64),
        Param::F64(3.0),
    ];
    session.call("saxpy", LaunchDims::for_elements(N as u64, 256), &params)?;
    session.sync()?;

    // Read the result through the same handle. The first touch of each
    // block faults, fetches, and the access retries — invisible here.
    let result = y.read(0)?;
    assert_eq!(result, 2.0 + 3.0 * 1.0);

    println!("saxpy({N} elements) done: y[0] = {result}");
    println!("virtual time      : {}", gmac.elapsed());
    println!(
        "transfers         : {} H2D, {} D2H",
        adsm::hetsim::stats::fmt_bytes(gmac.transfers().h2d_bytes),
        adsm::hetsim::stats::fmt_bytes(gmac.transfers().d2h_bytes)
    );
    println!("faults handled    : {}", gmac.counters().faults());
    println!("eager evictions   : {}", gmac.counters().eager_evictions);

    // Structured diagnostics (gmacProfile-style observability).
    println!();
    print!("{}", gmac.report());

    // adsmFree: explicit here; dropping the handles would free them too.
    x.free()?;
    y.free()?;
    Ok(())
}
