//! The service layer end to end: 256 client sessions with mixed priorities
//! fan in on a two-GPU platform through the job queue. The placer spreads
//! jobs by live load (queue depth + in-flight bytes per device), the
//! deficit-weighted fair queue arbitrates between priority classes, and a
//! too-small queue turns the overflow into machine-readable
//! [`GmacError::Admission`] rejections that clients absorb by retrying
//! after the hinted delay — `DeviceBusy` never reaches anyone.
//!
//! Run with: `cargo run --example service_demo`
//!
//! [`GmacError::Admission`]: adsm::gmac::GmacError::Admission

use adsm::gmac::{Gmac, GmacConfig, GmacError, Param, Priority};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use std::sync::Arc;
use std::time::Duration;

/// `v[i] = 3 * v[i]` — just enough work to make placement visible.
#[derive(Debug)]
struct Triple;

impl Kernel for Triple {
    fn name(&self) -> &str {
        "triple"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x *= 3.0;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SESSIONS: usize = 256;
    const JOBS_PER_SESSION: usize = 3;
    const N: usize = 4 * 1024;

    // Two G280s with overlapping device windows (the §4.2 situation), so
    // the jobs use safe_alloc — placement must work on EITHER device.
    let platform = Platform::desktop_multi_gpu(2);
    platform.register_kernel(Arc::new(Triple));
    let gmac = Gmac::new(
        platform,
        // A deliberately small queue: with 256 clients the overflow path
        // (admission rejection + hinted retry) actually fires.
        GmacConfig::default().service_queue_depth(128),
    );

    let svc = gmac.service();
    println!(
        "service up: {} devices, queue depth {}, priorities Low/Normal/High\n",
        svc.loads().len(),
        svc.capacity()
    );

    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            // Mixed tenancy: every third client is high-priority, etc.
            let client = svc.client(Priority::ALL[i % Priority::ALL.len()]);
            std::thread::spawn(move || {
                let mut retries = 0u64;
                for j in 0..JOBS_PER_SESSION {
                    let seed = (i * JOBS_PER_SESSION + j) as f32;
                    let ticket = loop {
                        match client.submit((N * 4) as u64, move |s| {
                            let v = s.safe_alloc((N * 4) as u64)?;
                            s.store_slice(v, &vec![seed; N])?;
                            s.call(
                                "triple",
                                LaunchDims::for_elements(N as u64, 256),
                                &[Param::Shared(v), Param::U64(N as u64)],
                            )?;
                            s.sync()?;
                            let out: f32 = s.load(v)?;
                            s.free(v)?;
                            Ok(out.to_bits() as u64)
                        }) {
                            Ok(t) => break t,
                            Err(GmacError::Admission { retry_after, .. }) => {
                                // Back-pressure, not failure: wait the
                                // hinted delay and resubmit.
                                retries += 1;
                                std::thread::sleep(Duration::from_nanos(
                                    retry_after.as_nanos().clamp(100_000, 2_000_000),
                                ));
                            }
                            Err(e) => panic!("submit: {e}"),
                        }
                    };
                    let bits = ticket.wait().expect("job result");
                    assert_eq!(f32::from_bits(bits as u32), seed * 3.0);
                }
                retries
            })
        })
        .collect();

    let retries: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();

    let snap = svc.stats();
    println!(
        "all {} jobs done ({} admission rejections absorbed by retry)\n",
        snap.completed(),
        retries
    );
    for p in Priority::ALL {
        let c = snap.classes[p.index()];
        println!(
            "  {:?}\tjobs {}\tserved {} B\tavg wait {:.3} ms",
            p,
            c.completed,
            c.served_bytes,
            c.avg_wait_ns() as f64 / 1e6
        );
    }
    println!("\n{}", gmac.report());
    drop(svc);
    Ok(())
}
