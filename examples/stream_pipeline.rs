//! Chunked streaming pipeline: process a stream larger than device memory
//! through two chunk-sized buffers (the paper's §2.2 double-buffering
//! motivation as a full workload).
//!
//! Demonstrates the background DMA engine: with `async_dma` on, the worker
//! thread lands flushed blocks in device memory while the CPU produces the
//! next chunk, so wall-clock time approaches max(compute, transfer) instead
//! of their sum. The `async_dma(false)` row is the inline ablation over the
//! exact same transfer plans — virtual time is byte-identical, only the
//! wall-clock overlap disappears.
//!
//! Run with: `cargo run --release --example stream_pipeline`

use adsm::gmac::{GmacConfig, Protocol};
use adsm::workloads::stream::StreamPipeline;
use adsm::workloads::{run_variant_with, Variant};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quarter of the default stream keeps the demo snappy; pass `--full`
    // for the full larger-than-device-memory run.
    let full = std::env::args().any(|a| a == "--full");
    let w = if full {
        StreamPipeline::default()
    } else {
        StreamPipeline {
            chunk: 2 * 1024 * 1024,
            chunks: 40,
        }
    };

    println!(
        "streaming {} through two {} device buffers ({} chunks):",
        adsm::hetsim::stats::fmt_bytes(w.total_bytes()),
        adsm::hetsim::stats::fmt_bytes(w.chunk_bytes()),
        w.chunks,
    );
    println!();

    for (label, async_dma) in [
        ("background DMA engine (async_dma on)", true),
        ("inline transfers     (async_dma off)", false),
    ] {
        let cfg = GmacConfig::default()
            .protocol(Protocol::Rolling)
            .async_dma(async_dma);
        let wall = Instant::now();
        let r = run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg)?;
        let wall = wall.elapsed();
        let c = r.counters.as_ref().expect("gmac run has counters");
        println!(
            "{label}   wall {:>8.1?}   virtual {:>10}   {} jobs overlapped, {:.1} ms join wait",
            wall,
            r.elapsed.to_string(),
            c.jobs_overlapped,
            c.dma_wait_ns as f64 / 1e6,
        );
    }

    println!();
    println!("virtual time and transfer bytes are identical across the two rows by");
    println!("construction: the engine only moves the wall-clock byte landing off the");
    println!("issuing thread. See results/BENCH_overlap.json for the measured ratio.");
    Ok(())
}
