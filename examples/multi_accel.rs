//! Multiple accelerators with overlapping memory windows: the §4.2 scenario
//! where the unified-address mmap trick *fails* and `adsmSafeAlloc` +
//! `adsmSafe` (translation) take over — driven through two per-device
//! [`Session`] handles whose kernel calls are in flight **simultaneously**.
//!
//! Run with: `cargo run --example multi_accel`
//!
//! [`Session`]: adsm::gmac::Session

use adsm::gmac::{Gmac, GmacConfig, GmacError, Param};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
};
use std::sync::Arc;

#[derive(Debug)]
struct Scale;

impl Kernel for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let k = args.f64(2)? as f32;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x *= k;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 64 * 1024;

    // Two G280s whose device windows share the same base address — exactly
    // the situation the paper warns about: "calls to cudaMalloc() for
    // different GPUs are likely to return overlapping memory address ranges".
    let platform = Platform::desktop_multi_gpu(2);
    platform.register_kernel(Arc::new(Scale));
    let gmac = Gmac::new(platform, GmacConfig::default());

    // One session per accelerator: each carries its own affinity and its
    // own pending-call state.
    let s0 = gmac.session_on(DeviceId(0));
    let s1 = gmac.session_on(DeviceId(1));

    // Unified allocation works for the first device...
    let a = s0.alloc((N * 4) as u64)?;
    println!(
        "dev0 unified alloc : host {} == device {}",
        a,
        s0.translate(a)?
    );

    // ...but the same range on the second device collides:
    match s1.alloc((N * 4) as u64) {
        Err(GmacError::AddressCollision(addr)) => {
            println!("dev1 unified alloc : collision at {addr} (as §4.2 predicts)");
        }
        other => panic!("expected an address collision, got {other:?}"),
    }

    // adsmSafeAlloc recovers: CPU pointer != device address, the runtime
    // translates kernel parameters automatically (adsmSafe).
    let b = s1.safe_alloc((N * 4) as u64)?;
    println!(
        "dev1 safe alloc    : host {} -> device {}",
        b,
        s1.translate(b)?
    );

    // Both objects are fully usable; each session launches on its own
    // accelerator and the two kernels are in flight at the same time.
    s0.store_slice(a, &vec![2.0f32; N])?;
    s1.store_slice(b, &vec![10.0f32; N])?;

    s0.call(
        "scale",
        LaunchDims::for_elements(N as u64, 256),
        &[Param::Shared(a), Param::U64(N as u64), Param::F64(3.0)],
    )?;
    s1.call(
        "scale",
        LaunchDims::for_elements(N as u64, 256),
        &[Param::Shared(b), Param::U64(N as u64), Param::F64(0.5)],
    )?;
    assert!(s0.has_pending_call() && s1.has_pending_call());
    println!(
        "in flight          : gpus {:?} (two un-synced calls at once)",
        gmac.pending_devices()
    );
    s0.sync()?;
    s1.sync()?;

    let va: f32 = s0.load(a)?;
    let vb: f32 = s1.load(b)?;
    assert_eq!(va, 6.0);
    assert_eq!(vb, 5.0);
    println!("results            : a[0] = {va} (dev0), b[0] = {vb} (dev1)");
    println!();
    println!("the paper's fix for this case is accelerator virtual memory (§4.2);");
    println!("until then, adsmSafeAlloc/adsmSafe keep multi-GPU systems working.");
    Ok(())
}
