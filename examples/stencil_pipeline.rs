//! A scientific-computing pipeline: iterative 3D stencil with CPU-side
//! source injection and periodic checkpoints to disk (the paper's §5.1
//! Figure 9 scenario).
//!
//! Demonstrates why rolling-update matters: the CPU touches *one block* per
//! time-step (the emitter), so only that block moves before the next kernel
//! call — lazy-update would transfer the entire volume.
//!
//! Run with: `cargo run --release --example stencil_pipeline`

use adsm::gmac::{GmacConfig, Protocol};
use adsm::workloads::stencil3d::Stencil3d;
use adsm::workloads::{run_variant_with, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Stencil3d {
        n: 96,
        steps: 8,
        dump_every: 4,
    };

    println!(
        "3D stencil {0}x{0}x{0}, {1} steps, checkpoint every {2}:",
        sim.n, sim.steps, sim.dump_every
    );
    println!();

    for (label, protocol, block) in [
        ("lazy-update (whole-object)", Protocol::Lazy, None),
        (
            "rolling-update, 256 KiB blocks",
            Protocol::Rolling,
            Some(256 * 1024u64),
        ),
        (
            "rolling-update, 1 MiB blocks",
            Protocol::Rolling,
            Some(1 << 20),
        ),
    ] {
        let mut cfg = GmacConfig::default().protocol(protocol);
        if let Some(b) = block {
            cfg = cfg.block_size(b);
        }
        let r = run_variant_with(&sim, Variant::Gmac(protocol), cfg)?;
        println!(
            "{label:<32} time {:>10}   H2D {:>10}   D2H {:>10}",
            r.elapsed.to_string(),
            adsm::hetsim::stats::fmt_bytes(r.transfers.h2d_bytes),
            adsm::hetsim::stats::fmt_bytes(r.transfers.d2h_bytes),
        );
    }

    println!();
    println!("note how rolling-update's H2D traffic is a fraction of lazy-update's:");
    println!("source introduction dirties one block, not the whole volume (paper §5.1).");
    Ok(())
}
