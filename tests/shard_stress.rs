//! Multi-shard stress test: 4 sessions × 2 devices hammering
//! alloc/call/sync/free/memcpy concurrently.
//!
//! Two sessions share each accelerator (so `DeviceBusy` back-off paths are
//! exercised alongside the happy path), every round also performs a
//! cross-device `memcpy` (the two-shard transaction) plus a free-while-
//! pending rejection, and each thread's output digest must equal the one a
//! sequential run of the same function produces — the shard locks may
//! reorder wall-clock execution but never change data. A watchdog bounds
//! the whole round so a lock-order bug shows up as a clean test failure
//! instead of a hung CI job.

use adsm::gmac::{Gmac, GmacConfig, GmacError, Param};
use adsm::hetsim::{DeviceId, LaunchDims, Platform};
use adsm::workloads::vecadd::VecAddKernel;
use adsm::workloads::Digest;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const DEVICES: usize = 2;
const N: usize = 32 * 1024;
const ROUNDS: usize = 6;
const WATCHDOG: Duration = Duration::from_secs(120);

fn platform() -> Platform {
    let p = Platform::desktop_multi_gpu(DEVICES);
    p.register_kernel(Arc::new(VecAddKernel));
    p
}

fn inputs(seed: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..N).map(|i| ((i + seed * 97) % 5001) as f32).collect();
    let b: Vec<f32> = (0..N).map(|i| ((i * 3 + seed) % 4099) as f32).collect();
    (a, b)
}

/// One worker's full workload: `ROUNDS` vecadd rounds on its home device,
/// each with a free-while-pending rejection check and a cross-device
/// `memcpy` of the result through the *other* accelerator. Returns the
/// digest over everything the worker observed. Deterministic per worker, so
/// the same function doubles as the sequential reference.
fn worker_round(gmac: &Gmac, worker: usize) -> u64 {
    let home = DeviceId(worker % DEVICES);
    let away = DeviceId((worker + 1) % DEVICES);
    let session = gmac.session_on(home);
    let mut digest = Digest::new();
    for round in 0..ROUNDS {
        let (va, vb) = inputs(worker * 1000 + round);
        let a = session.safe_alloc_typed::<f32>(N).unwrap();
        let b = session.safe_alloc_typed::<f32>(N).unwrap();
        let c = session.safe_alloc_typed::<f32>(N).unwrap();
        let c_ptr = c.ptr();
        a.write_slice(&va).unwrap();
        b.write_slice(&vb).unwrap();
        let params = [
            Param::from(&a),
            Param::from(&b),
            Param::from(&c),
            Param::U64(N as u64),
        ];
        // Two sessions share each device: back off while the sibling's call
        // is in flight.
        loop {
            match session.call("vecadd", LaunchDims::for_elements(N as u64, 256), &params) {
                Ok(()) => break,
                Err(GmacError::DeviceBusy { dev, .. }) => {
                    assert_eq!(dev, home, "busy error must name the home device");
                    std::thread::yield_now();
                }
                Err(other) => panic!("worker {worker}: {other}"),
            }
        }
        // A free while our own call is pending must be refused, naming us as
        // the owner (and leaving the object alive for the raw path below).
        match c.free() {
            Err(GmacError::ObjectInUse { dev, owner, .. }) => {
                assert_eq!(dev, home);
                assert_eq!(owner, session.id());
            }
            other => panic!("worker {worker}: free while pending returned {other:?}"),
        }
        session.sync().unwrap();

        // Cross-device round trip: stage the result on the *other*
        // accelerator (a two-shard memcpy transaction), then read it back.
        let staged = session.safe_alloc_on(away, (N * 4) as u64).unwrap();
        session.memcpy(staged, c_ptr, (N * 4) as u64).unwrap();
        let out: Vec<f32> = session.load_slice(staged, N).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, va[i] + vb[i], "worker {worker} round {round} elem {i}");
        }
        digest.update_f32(&out);

        session.free(staged).unwrap();
        session.free(c_ptr).unwrap();
        // a and b free on drop.
    }
    digest.finish()
}

/// Sequential reference digests (one worker at a time on a fresh runtime).
fn sequential_digests() -> Vec<u64> {
    let gmac = Gmac::new(platform(), GmacConfig::default());
    (0..THREADS).map(|w| worker_round(&gmac, w)).collect()
}

#[test]
fn concurrent_sessions_match_sequential_digests_without_deadlock() {
    let reference = sequential_digests();

    let gmac = Gmac::new(platform(), GmacConfig::default());
    let (tx, rx) = mpsc::channel();
    for worker in 0..THREADS {
        let gmac = gmac.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let digest = worker_round(&gmac, worker);
            tx.send((worker, digest)).unwrap();
        });
    }
    drop(tx);

    let mut digests = vec![0u64; THREADS];
    for _ in 0..THREADS {
        // The watchdog: a deadlock (lock-order bug) fails here instead of
        // hanging the whole test run.
        let (worker, digest) = rx
            .recv_timeout(WATCHDOG)
            .expect("worker deadlocked or panicked");
        digests[worker] = digest;
    }

    assert_eq!(
        digests, reference,
        "concurrent shard execution must be data-equivalent to sequential"
    );
    assert_eq!(gmac.object_count(), 0, "every object freed");
    assert!(gmac.pending_devices().is_empty(), "every call synced");
    assert_eq!(
        gmac.ledger().total(),
        gmac.elapsed(),
        "the ledger partitions elapsed virtual time even under concurrency"
    );
}

/// A kernel that parks inside its launch until the test releases it —
/// holding device 0's execution lock the whole time.
#[derive(Debug)]
struct GateKernel {
    entered: Arc<std::sync::atomic::AtomicBool>,
    release: Arc<std::sync::atomic::AtomicBool>,
}

impl adsm::hetsim::Kernel for GateKernel {
    fn name(&self) -> &str {
        "gate"
    }
    fn execute(
        &self,
        _mem: &mut adsm::hetsim::DeviceMemory,
        _dims: LaunchDims,
        _args: adsm::hetsim::Args<'_>,
    ) -> adsm::hetsim::SimResult<adsm::hetsim::KernelProfile> {
        use std::sync::atomic::Ordering;
        self.entered.store(true, Ordering::SeqCst);
        while !self.release.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        Ok(adsm::hetsim::KernelProfile::new(1.0, 0.0))
    }
}

/// Structural witness of shard independence that needs no second CPU core:
/// while a kernel call is **blocked mid-launch on device 0** (holding that
/// shard's and that device's locks), a full alloc/store/load/free round on
/// device 1 completes. Under the old global `Mutex<State>` — or today's
/// `sharding(false)` ablation mode — the device-1 round would deadlock
/// behind the parked call.
#[test]
fn device1_operations_proceed_while_device0_call_is_parked() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let p = Platform::desktop_multi_gpu(DEVICES);
    p.register_kernel(Arc::new(GateKernel {
        entered: Arc::clone(&entered),
        release: Arc::clone(&release),
    }));
    let gmac = Gmac::new(p, GmacConfig::default());

    let (tx, rx) = mpsc::channel();
    {
        let gmac = gmac.clone();
        std::thread::spawn(move || {
            let s0 = gmac.session_on(DeviceId(0));
            s0.call("gate", LaunchDims::for_elements(1, 1), &[])
                .unwrap();
            s0.sync().unwrap();
            tx.send(()).unwrap();
        });
    }

    // Wait until the kernel is provably parked inside the device-0 call.
    let start = std::time::Instant::now();
    while !entered.load(Ordering::SeqCst) {
        assert!(start.elapsed() < WATCHDOG, "gate kernel never started");
        std::thread::yield_now();
    }

    // Device 1 is a different shard: this whole round must complete while
    // device 0 is still blocked.
    let s1 = gmac.session_on(DeviceId(1));
    let v = s1.safe_alloc(4096).unwrap();
    s1.store::<u32>(v, 0xC0FFEE).unwrap();
    assert_eq!(s1.load::<u32>(v).unwrap(), 0xC0FFEE);
    s1.free(v).unwrap();
    // (No shard-0 introspection here: the parked call legitimately holds
    // that shard's lock, which is exactly the point of this test.)
    assert!(
        entered.load(Ordering::SeqCst) && !release.load(Ordering::SeqCst),
        "device 0's call must still be parked in flight"
    );

    release.store(true, Ordering::SeqCst);
    rx.recv_timeout(WATCHDOG)
        .expect("parked call failed to finish after release");
}

/// Regression for the free/alloc reuse race: `free` must release the host
/// registry claim *before* the device range returns to the first-fit
/// allocator, otherwise a concurrent unified `alloc` can be handed the
/// just-freed device address and spuriously collide with the stale claim.
#[test]
fn unified_alloc_free_churn_never_spuriously_collides() {
    let gmac = Gmac::new(platform(), GmacConfig::default());
    let (tx, rx) = mpsc::channel();
    for worker in 0..THREADS {
        let gmac = gmac.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let session = gmac.session_on(DeviceId(0));
            for i in 0..200u32 {
                // Every live allocation holds a distinct device address, so
                // a unified claim can only collide against a *stale* claim
                // of a finished free — which must never happen.
                let p = session.alloc(8192).expect("spurious AddressCollision");
                session.store::<u32>(p, i).unwrap();
                assert_eq!(session.load::<u32>(p).unwrap(), i);
                session.free(p).unwrap();
            }
            tx.send(worker).unwrap();
        });
    }
    drop(tx);
    for _ in 0..THREADS {
        rx.recv_timeout(WATCHDOG).expect("churn worker died");
    }
    assert_eq!(gmac.object_count(), 0);
}

#[test]
fn stress_round_is_mode_independent() {
    // The same concurrent stress under the global-lock ablation mode must
    // produce the same digests (it serialises the exact same code paths).
    let reference = sequential_digests();
    let gmac = Gmac::new(platform(), GmacConfig::default().sharding(false));
    let (tx, rx) = mpsc::channel();
    for worker in 0..THREADS {
        let gmac = gmac.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let digest = worker_round(&gmac, worker);
            tx.send((worker, digest)).unwrap();
        });
    }
    drop(tx);
    let mut digests = vec![0u64; THREADS];
    for _ in 0..THREADS {
        let (worker, digest) = rx
            .recv_timeout(WATCHDOG)
            .expect("worker deadlocked or panicked");
        digests[worker] = digest;
    }
    assert_eq!(digests, reference);
    assert_eq!(gmac.object_count(), 0);
}
