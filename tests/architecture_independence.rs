//! The paper's first ADSM benefit (§3.1): "An application written following
//! a data-centric programming model will target both kinds of systems
//! efficiently" — discrete accelerators with private memory *and* low-cost
//! systems where CPU and accelerator share physical memory.
//!
//! The same unmodified application code runs on both simulated platforms;
//! only the platform handle changes.

use adsm::gmac::{Gmac, GmacConfig, Param, Protocol, SharedPtr};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{
    Args, Category, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
};
use std::sync::Arc;

const N: usize = 512 * 1024;

#[derive(Debug)]
struct Square;

impl Kernel for Square {
    fn name(&self) -> &str {
        "square"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x *= *x;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

/// The application: written once against the ADSM API, no platform detail.
fn app(gmac: &Gmac) -> u64 {
    let ctx = gmac.session();
    let v: SharedPtr = ctx.alloc((N * 4) as u64).unwrap();
    ctx.store_slice(v, &(0..N).map(|i| (i % 100) as f32).collect::<Vec<_>>())
        .unwrap();
    ctx.call(
        "square",
        LaunchDims::for_elements(N as u64, 256),
        &[Param::Shared(v), Param::U64(N as u64)],
    )
    .unwrap();
    ctx.sync().unwrap();
    let out: Vec<f32> = ctx.load_slice(v, N).unwrap();
    let mut digest = adsm::workloads::Digest::new();
    digest.update_f32(&out);
    digest.finish()
}

#[test]
fn same_code_runs_on_discrete_and_integrated_platforms() {
    let discrete = Platform::desktop_g280();
    discrete.register_kernel(Arc::new(Square));
    let fused = Platform::fused_apu();
    fused.register_kernel(Arc::new(Square));

    let g1 = Gmac::new(discrete, GmacConfig::default());
    let g2 = Gmac::new(fused, GmacConfig::default());
    let d1 = app(&g1);
    let d2 = app(&g2);

    // Identical results, unchanged source.
    assert_eq!(d1, d2);

    // The integrated platform's "transfers" cross shared DRAM: far cheaper
    // per byte-moved than PCIe DMA (no 12 us doorbell per block).
    let pcie_copy = g1.ledger().get(Category::Copy);
    let shared_copy = g2.ledger().get(Category::Copy);
    assert!(
        shared_copy < pcie_copy,
        "integrated copies ({shared_copy}) should be cheaper than PCIe ({pcie_copy})"
    );
}

#[test]
fn fused_platform_shape() {
    let p = Platform::fused_apu();
    assert_eq!(p.device_count(), 1);
    let dev = p.device(adsm::hetsim::DeviceId(0)).unwrap();
    assert_eq!(dev.link_h2d().name(), "Integrated shared memory");
    assert!(dev.spec().flops < 933e9, "integrated GPUs are weaker");
    assert_eq!(dev.mem().capacity(), 512 << 20);
}

#[test]
fn protocols_behave_identically_on_fused_platform() {
    for protocol in Protocol::ALL {
        let fused = Platform::fused_apu();
        fused.register_kernel(Arc::new(Square));
        let digest = app(&Gmac::new(fused, GmacConfig::default().protocol(protocol)));
        let mut reference = adsm::workloads::Digest::new();
        reference.update_f32(
            &(0..N)
                .map(|i| ((i % 100) * (i % 100)) as f32)
                .collect::<Vec<_>>(),
        );
        assert_eq!(digest, reference.finish(), "{protocol}");
    }
}
