//! Release-consistency oracle: arbitrary interleavings of CPU reads, CPU
//! writes, memsets and kernel rounds must observe exactly the values a
//! trivially-coherent reference model produces — under *every* coherence
//! protocol (paper §3.3: after `adsmCall` the accelerator sees every CPU
//! write; after `adsmSync` the CPU sees every kernel write).

use adsm::gmac::{Gmac, GmacConfig, Param, Protocol, SharedPtr};
use adsm::hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use proptest::prelude::*;
use std::sync::Arc;

const OBJ_SIZE: usize = 64 * 1024;

/// Kernel: `a[i] += 1`, `b[i] ^= 0x5A` over whole objects.
#[derive(Debug)]
struct Mutate;

impl Kernel for Mutate {
    fn name(&self) -> &str {
        "mutate"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let a = args.ptr(0)?;
        let b = args.ptr(1)?;
        for byte in mem.slice_mut(a, OBJ_SIZE as u64)?.iter_mut() {
            *byte = byte.wrapping_add(1);
        }
        for byte in mem.slice_mut(b, OBJ_SIZE as u64)?.iter_mut() {
            *byte ^= 0x5A;
        }
        Ok(KernelProfile::new(
            OBJ_SIZE as f64 * 2.0,
            OBJ_SIZE as f64 * 4.0,
        ))
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Write `len` deterministic bytes at `off` of object `obj`.
    Write {
        obj: usize,
        off: usize,
        len: usize,
        seed: u8,
    },
    /// Read `len` bytes at `off` of object `obj` and compare to the model.
    Read { obj: usize, off: usize, len: usize },
    /// Interposed memset.
    Memset {
        obj: usize,
        off: usize,
        len: usize,
        value: u8,
    },
    /// adsmCall + adsmSync of the mutate kernel.
    KernelRound,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = 0usize..OBJ_SIZE;
    prop_oneof![
        (0usize..2, r.clone(), 1usize..4096, any::<u8>()).prop_map(|(obj, off, len, seed)| {
            Op::Write {
                obj,
                off,
                len,
                seed,
            }
        }),
        (0usize..2, r.clone(), 1usize..4096).prop_map(|(obj, off, len)| Op::Read { obj, off, len }),
        (0usize..2, r, 1usize..8192, any::<u8>()).prop_map(|(obj, off, len, value)| Op::Memset {
            obj,
            off,
            len,
            value
        }),
        Just(Op::KernelRound),
    ]
}

fn fill_pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add(i as u8).wrapping_mul(31))
        .collect()
}

fn run_oracle(protocol: Protocol, block_size: u64, ops: &[Op]) {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Mutate));
    let ctx = Gmac::new(
        platform,
        GmacConfig::default()
            .protocol(protocol)
            .block_size(block_size),
    )
    .session();
    let objs: [SharedPtr; 2] = [
        ctx.alloc(OBJ_SIZE as u64).unwrap(),
        ctx.alloc(OBJ_SIZE as u64).unwrap(),
    ];
    // Reference model: always-coherent flat buffers.
    let mut model = [vec![0u8; OBJ_SIZE], vec![0u8; OBJ_SIZE]];
    // Both start zeroed (frames and device memory are zero-initialised);
    // make it explicit anyway.
    for obj in &objs {
        ctx.memset(*obj, 0, OBJ_SIZE as u64).unwrap();
    }

    for op in ops {
        match *op {
            Op::Write {
                obj,
                off,
                len,
                seed,
            } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                let data = fill_pattern(seed, len);
                ctx.store_slice(objs[obj].byte_add(off as u64), &data)
                    .unwrap();
                model[obj][off..off + len].copy_from_slice(&data);
            }
            Op::Read { obj, off, len } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                let got: Vec<u8> = ctx.load_slice(objs[obj].byte_add(off as u64), len).unwrap();
                assert_eq!(
                    got,
                    &model[obj][off..off + len],
                    "{protocol} read mismatch at obj {obj} off {off} len {len}"
                );
            }
            Op::Memset {
                obj,
                off,
                len,
                value,
            } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                ctx.memset(objs[obj].byte_add(off as u64), value, len as u64)
                    .unwrap();
                model[obj][off..off + len].fill(value);
            }
            Op::KernelRound => {
                let params = [Param::Shared(objs[0]), Param::Shared(objs[1])];
                ctx.call(
                    "mutate",
                    LaunchDims::for_elements(OBJ_SIZE as u64, 256),
                    &params,
                )
                .unwrap();
                ctx.sync().unwrap();
                for byte in model[0].iter_mut() {
                    *byte = byte.wrapping_add(1);
                }
                for byte in model[1].iter_mut() {
                    *byte ^= 0x5A;
                }
            }
        }
    }

    // Final full readback must match exactly.
    for o in 0..2 {
        let got: Vec<u8> = ctx.load_slice(objs[o], OBJ_SIZE).unwrap();
        assert_eq!(
            got, model[o],
            "{protocol} final state mismatch on object {o}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn batch_update_is_release_consistent(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_oracle(Protocol::Batch, 8192, &ops);
    }

    #[test]
    fn lazy_update_is_release_consistent(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_oracle(Protocol::Lazy, 8192, &ops);
    }

    #[test]
    fn rolling_update_is_release_consistent(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_oracle(Protocol::Rolling, 8192, &ops);
    }

    #[test]
    fn rolling_with_tiny_rolling_size_is_release_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..25)
    ) {
        // Rolling size 1 maximises evictions: the hardest case for the
        // dirty-set bookkeeping.
        let platform = Platform::desktop_g280();
        platform.register_kernel(Arc::new(Mutate));
        let _ = platform;
        // Reuse the oracle with a pinned rolling size via a custom run.
        run_oracle_pinned(&ops);
    }
}

fn run_oracle_pinned(ops: &[Op]) {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Mutate));
    let ctx = Gmac::new(
        platform,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096)
            .rolling_size(1),
    )
    .session();
    let objs: [SharedPtr; 2] = [
        ctx.alloc(OBJ_SIZE as u64).unwrap(),
        ctx.alloc(OBJ_SIZE as u64).unwrap(),
    ];
    let mut model = [vec![0u8; OBJ_SIZE], vec![0u8; OBJ_SIZE]];
    for op in ops {
        match *op {
            Op::Write {
                obj,
                off,
                len,
                seed,
            } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                let data = fill_pattern(seed, len);
                ctx.store_slice(objs[obj].byte_add(off as u64), &data)
                    .unwrap();
                model[obj][off..off + len].copy_from_slice(&data);
            }
            Op::Read { obj, off, len } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                let got: Vec<u8> = ctx.load_slice(objs[obj].byte_add(off as u64), len).unwrap();
                assert_eq!(got, &model[obj][off..off + len]);
            }
            Op::Memset {
                obj,
                off,
                len,
                value,
            } => {
                let len = len.min(OBJ_SIZE - off);
                if len == 0 {
                    continue;
                }
                ctx.memset(objs[obj].byte_add(off as u64), value, len as u64)
                    .unwrap();
                model[obj][off..off + len].fill(value);
            }
            Op::KernelRound => {
                let params = [Param::Shared(objs[0]), Param::Shared(objs[1])];
                ctx.call(
                    "mutate",
                    LaunchDims::for_elements(OBJ_SIZE as u64, 256),
                    &params,
                )
                .unwrap();
                ctx.sync().unwrap();
                for byte in model[0].iter_mut() {
                    *byte = byte.wrapping_add(1);
                }
                for byte in model[1].iter_mut() {
                    *byte ^= 0x5A;
                }
            }
        }
    }
    for o in 0..2 {
        let got: Vec<u8> = ctx.load_slice(objs[o], OBJ_SIZE).unwrap();
        assert_eq!(
            got, model[o],
            "pinned-rolling final state mismatch on object {o}"
        );
    }
}
