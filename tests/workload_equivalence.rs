//! Cross-crate integration: every workload produces bit-identical outputs
//! under the CUDA baseline and all three GMAC protocols, and the platform's
//! time accounting stays consistent throughout.

use adsm::gmac::Protocol;
use adsm::hetsim::Category;
use adsm::workloads::{parboil_suite_small, run_variant, Variant};

#[test]
fn all_parboil_workloads_agree_across_variants() {
    for w in parboil_suite_small() {
        let baseline = run_variant(w.as_ref(), Variant::Cuda).unwrap();
        for protocol in Protocol::ALL {
            let r = run_variant(w.as_ref(), Variant::Gmac(protocol)).unwrap();
            assert_eq!(
                r.digest,
                baseline.digest,
                "{} output differs between CUDA and {protocol}",
                w.name()
            );
        }
    }
}

#[test]
fn ledger_partitions_time_for_every_workload_and_variant() {
    // The Figure 10 invariant: the break-down accounts for all elapsed time.
    for w in parboil_suite_small() {
        for variant in Variant::ALL {
            let r = run_variant(w.as_ref(), variant).unwrap();
            assert_eq!(
                r.ledger.total(),
                r.elapsed,
                "{} under {variant}: ledger does not partition elapsed time",
                w.name()
            );
        }
    }
}

#[test]
fn batch_never_faults_and_detection_protocols_do() {
    for w in parboil_suite_small() {
        let batch = run_variant(w.as_ref(), Variant::Gmac(Protocol::Batch)).unwrap();
        assert_eq!(
            batch.counters.unwrap().faults(),
            0,
            "{}: batch-update must not use protection faults",
            w.name()
        );
        let rolling = run_variant(w.as_ref(), Variant::Gmac(Protocol::Rolling)).unwrap();
        assert!(
            rolling.counters.unwrap().faults() > 0,
            "{}: rolling-update should detect CPU accesses via faults",
            w.name()
        );
    }
}

#[test]
fn lazy_and_rolling_never_move_more_than_batch() {
    for w in parboil_suite_small() {
        let batch = run_variant(w.as_ref(), Variant::Gmac(Protocol::Batch)).unwrap();
        for protocol in [Protocol::Lazy, Protocol::Rolling] {
            let r = run_variant(w.as_ref(), Variant::Gmac(protocol)).unwrap();
            assert!(
                r.transfers.total_bytes() <= batch.transfers.total_bytes(),
                "{} under {protocol} moved more than batch ({} > {})",
                w.name(),
                r.transfers.total_bytes(),
                batch.transfers.total_bytes()
            );
        }
    }
}

#[test]
fn signal_overhead_small_across_suite() {
    // Paper Figure 10: signal handling below 2% — allow a little slack on
    // the scaled-down test inputs (which shrink every *other* category too).
    for w in parboil_suite_small() {
        let r = run_variant(w.as_ref(), Variant::Gmac(Protocol::Rolling)).unwrap();
        let frac = r.ledger.get(Category::Signal).as_nanos() as f64
            / r.ledger.total().as_nanos().max(1) as f64;
        assert!(
            frac < 0.08,
            "{}: signal fraction {frac:.3} too large",
            w.name()
        );
    }
}

#[test]
fn descriptions_match_table2() {
    // Table 2 names all seven benchmarks.
    let names: Vec<&str> = parboil_suite_small().iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        ["cp", "mri-fhd", "mri-q", "pns", "rpes", "sad", "tpacf"]
    );
    for w in parboil_suite_small() {
        assert!(!w.description().is_empty());
    }
}
