//! Property tests of the rolling-update dirty-set invariant through the
//! public API: at no point may more blocks be dirty than the rolling size
//! (paper §4.3 — "this protocol only allows a fixed number of blocks to be
//! in the dirty state on the CPU").

use adsm::gmac::{Gmac, GmacConfig, Protocol};
use adsm::hetsim::Platform;
use proptest::prelude::*;

const BLOCK: u64 = 4096;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn dirty_set_never_exceeds_rolling_size(
        rolling_size in 1usize..6,
        writes in proptest::collection::vec((0u64..64, 1u64..2 * BLOCK), 1..120),
    ) {
        let ctx = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(BLOCK)
                .rolling_size(rolling_size),
        )
        .session();
        let obj = ctx.alloc(64 * BLOCK).unwrap();
        for (block_idx, len) in writes {
            let off = block_idx * BLOCK;
            let len = len.min(64 * BLOCK - off);
            ctx.store_slice(obj.byte_add(off), &vec![0xABu8; len as usize]).unwrap();
            let dirty = ctx.with_parts(|_, mgr, protocol| protocol.dirty_blocks(mgr));
            prop_assert!(
                dirty <= rolling_size,
                "dirty {} exceeds rolling size {}",
                dirty,
                rolling_size
            );
        }
    }

    #[test]
    fn evicted_blocks_match_device_content(
        writes in proptest::collection::vec((0u64..16, any::<u8>()), 1..60),
    ) {
        // With rolling size 1, every second write evicts a block; the
        // evicted (read-only) block's device copy must equal the host copy.
        let ctx = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(BLOCK)
                .rolling_size(1),
        )
        .session();
        let obj = ctx.alloc(16 * BLOCK).unwrap();
        let mut model = vec![0u8; (16 * BLOCK) as usize];
        for (block_idx, value) in writes {
            let off = (block_idx * BLOCK) as usize;
            ctx.store_slice(obj.byte_add(off as u64), &vec![value; BLOCK as usize]).unwrap();
            model[off..off + BLOCK as usize].fill(value);
        }
        // Force everything to the device, then read it all back.
        ctx.with_parts(|rt, mgr, protocol| protocol.release(rt, mgr, adsm::hetsim::DeviceId(0), None))
            .unwrap();
        let got: Vec<u8> = ctx.load_slice(obj, (16 * BLOCK) as usize).unwrap();
        prop_assert_eq!(got, model);
    }
}

#[test]
fn adaptive_rolling_size_grows_with_allocations() {
    // Default config: rolling size += 2 per allocation. Five allocations
    // give a bound of 10 dirty blocks; an 11-block write pattern must evict.
    let ctx = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(BLOCK),
    )
    .session();
    let objs: Vec<_> = (0..5).map(|_| ctx.alloc(16 * BLOCK).unwrap()).collect();
    for (i, obj) in objs.iter().enumerate() {
        for b in 0..3u64 {
            ctx.store::<u8>(obj.byte_add(b * BLOCK), i as u8).unwrap();
        }
    }
    // 15 blocks dirtied; bound is 10.
    let dirty = ctx.with_parts(|_, mgr, protocol| protocol.dirty_blocks(mgr));
    assert!(dirty <= 10, "adaptive bound violated: {dirty}");
    assert!(dirty > 0);
}
