//! The tentpole acceptance test of the `Gmac`/`Session` redesign: two
//! sessions on two accelerators each hold an **un-synced kernel call at the
//! same time** (the old monolithic `Context` had one global pending slot, so
//! only one kernel could be in flight across the whole platform), results
//! stay coherent with a sequential single-session run, and the `TimeLedger`
//! still partitions every elapsed nanosecond.

use adsm::gmac::{Gmac, GmacConfig, GmacError, Param, Protocol, Session};
use adsm::hetsim::kernel::{read_f32_slice, write_f32_slice};
use adsm::hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
};
use adsm::workloads::Digest;
use std::sync::Arc;

const N: usize = 128 * 1024;

/// `v[i] = v[i] * k + i % 17` — order-sensitive enough to catch a swapped
/// or clobbered buffer.
#[derive(Debug)]
struct Affine;

impl Kernel for Affine {
    fn name(&self) -> &str {
        "affine"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let k = args.f64(2)? as f32;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for (i, x) in v.iter_mut().enumerate() {
            *x = *x * k + (i % 17) as f32;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(2.0 * n as f64, 8.0 * n as f64))
    }
}

fn platform() -> Platform {
    let p = Platform::desktop_multi_gpu(2);
    p.register_kernel(Arc::new(Affine));
    p
}

fn input(dev: usize) -> Vec<f32> {
    (0..N).map(|i| ((i + dev * 31) % 100) as f32).collect()
}

/// Runs the per-device workload through `session` up to (not including) the
/// sync, returning the buffer pointer.
fn start_round(session: &Session, dev: usize, k: f64) -> adsm::gmac::SharedPtr {
    // Device windows overlap (§4.2): dev1 needs safe_alloc.
    let v = if dev == 0 {
        session.alloc((N * 4) as u64).unwrap()
    } else {
        session.safe_alloc((N * 4) as u64).unwrap()
    };
    session.store_slice(v, &input(dev)).unwrap();
    session
        .call(
            "affine",
            LaunchDims::for_elements(N as u64, 256),
            &[Param::Shared(v), Param::U64(N as u64), Param::F64(k)],
        )
        .unwrap();
    v
}

fn digest_of(session: &Session, v: adsm::gmac::SharedPtr) -> u64 {
    let out: Vec<f32> = session.load_slice(v, N).unwrap();
    let mut d = Digest::new();
    d.update_f32(&out);
    d.finish()
}

/// Sequential single-session reference: one call in flight at a time.
fn sequential_digests() -> (u64, u64) {
    let gmac = Gmac::new(platform(), GmacConfig::default());
    let s0 = gmac.session_on(DeviceId(0));
    let v0 = start_round(&s0, 0, 3.0);
    s0.sync().unwrap();
    let d0 = digest_of(&s0, v0);

    let s1 = gmac.session_on(DeviceId(1));
    let v1 = start_round(&s1, 1, 0.5);
    s1.sync().unwrap();
    let d1 = digest_of(&s1, v1);
    (d0, d1)
}

#[test]
fn two_sessions_hold_inflight_calls_simultaneously_with_coherent_results() {
    for protocol in Protocol::ALL {
        let gmac = Gmac::new(platform(), GmacConfig::default().protocol(protocol));
        let s0 = gmac.session_on(DeviceId(0));
        let s1 = gmac.session_on(DeviceId(1));

        let v0 = start_round(&s0, 0, 3.0);
        let v1 = start_round(&s1, 1, 0.5);

        // The tentpole property: BOTH calls are in flight before EITHER
        // session has synced.
        assert!(s0.has_pending_call(), "{protocol}: dev0 call in flight");
        assert!(s1.has_pending_call(), "{protocol}: dev1 call in flight");
        assert_eq!(
            gmac.pending_devices(),
            vec![DeviceId(0), DeviceId(1)],
            "{protocol}: one un-synced call per device"
        );

        s0.sync().unwrap();
        assert!(
            s1.has_pending_call(),
            "{protocol}: syncing session 0 must not join session 1's call"
        );
        s1.sync().unwrap();

        let (d0, d1) = (digest_of(&s0, v0), digest_of(&s1, v1));
        let (ref0, ref1) = sequential_digests();
        assert_eq!(d0, ref0, "{protocol}: dev0 result differs from sequential");
        assert_eq!(d1, ref1, "{protocol}: dev1 result differs from sequential");

        s0.free(v0).unwrap();
        s1.free(v1).unwrap();

        // TimeLedger sanity: every elapsed nanosecond is attributed to a
        // category, even with overlapping calls.
        let ledger = gmac.ledger();
        assert_eq!(
            ledger.total(),
            gmac.elapsed(),
            "{protocol}: ledger must partition elapsed time"
        );
        assert!(
            gmac.elapsed().as_nanos() > 0,
            "{protocol}: virtual time advanced"
        );
    }
}

#[test]
fn concurrent_round_from_two_host_threads() {
    // Same flow, but genuinely from two OS threads: proves `Session: Send`
    // and that the runtime's interior lock keeps the bookkeeping coherent.
    let gmac = Gmac::new(platform(), GmacConfig::default());
    let (ref0, ref1) = sequential_digests();
    let handles: Vec<_> = [(0usize, 3.0f64, ref0), (1usize, 0.5f64, ref1)]
        .into_iter()
        .map(|(dev, k, reference)| {
            let session = gmac.session_on(DeviceId(dev));
            std::thread::spawn(move || {
                let v = start_round(&session, dev, k);
                session.sync().unwrap();
                assert_eq!(digest_of(&session, v), reference, "thread for dev{dev}");
                session.free(v).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(gmac.object_count(), 0);
    assert_eq!(gmac.ledger().total(), gmac.elapsed());
}

#[test]
fn overlap_beats_forced_serialization_on_gpu_wait_time() {
    // With two calls in flight the second session's sync finds its kernel
    // already (partially) done behind the first: total GPU wait is below
    // the strictly-sequential run's.
    let run = |overlap: bool| {
        let gmac = Gmac::new(platform(), GmacConfig::default());
        let s0 = gmac.session_on(DeviceId(0));
        let s1 = gmac.session_on(DeviceId(1));
        if overlap {
            let _v0 = start_round(&s0, 0, 3.0);
            let _v1 = start_round(&s1, 1, 0.5);
            s0.sync().unwrap();
            s1.sync().unwrap();
        } else {
            let _v0 = start_round(&s0, 0, 3.0);
            s0.sync().unwrap();
            let _v1 = start_round(&s1, 1, 0.5);
            s1.sync().unwrap();
        }
        gmac.elapsed()
    };
    let overlapped = run(true);
    let serialized = run(false);
    assert!(
        overlapped < serialized,
        "two devices in flight must overlap: {overlapped} vs {serialized}"
    );
}

#[test]
fn foreign_session_cannot_sync_or_stack_on_a_busy_device() {
    let gmac = Gmac::new(platform(), GmacConfig::default());
    let s0 = gmac.session_on(DeviceId(0));
    let intruder = gmac.session_on(DeviceId(0));
    let v = start_round(&s0, 0, 2.0);

    // A different session cannot launch on the busy device...
    match intruder.call("affine", LaunchDims::for_elements(1, 1), &[]) {
        Err(GmacError::DeviceBusy { dev, owner, .. }) => {
            assert_eq!(dev, DeviceId(0));
            assert_eq!(owner, s0.id());
        }
        other => panic!("expected DeviceBusy, got {other:?}"),
    }
    // ...nor steal the sync.
    assert!(matches!(intruder.sync(), Err(GmacError::NothingToSync)));

    // And freeing the in-flight object is rejected cleanly for everyone.
    assert!(matches!(
        intruder.free(v),
        Err(GmacError::ObjectInUse { .. })
    ));
    s0.sync().unwrap();
    s0.free(v).unwrap();
}
