//! End-to-end I/O pipeline across crates: disk → shared memory → kernel →
//! shared memory → disk, exercising the §4.4 interposition under every
//! protocol, including ranges that straddle block boundaries.

use adsm::gmac::{Gmac, GmacConfig, Param, Protocol};
use adsm::hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use std::sync::Arc;

/// Kernel: byte-wise `out[i] = in[i] XOR key`.
#[derive(Debug)]
struct XorKernel;

impl Kernel for XorKernel {
    fn name(&self) -> &str {
        "xor"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(2)?;
        let key = args.u64(3)? as u8;
        let input = mem.slice(args.ptr(0)?, n)?.to_vec();
        let output: Vec<u8> = input.iter().map(|b| b ^ key).collect();
        mem.write(args.ptr(1)?, &output)?;
        Ok(KernelProfile::new(n as f64, n as f64 * 2.0))
    }
}

fn pipeline(protocol: Protocol, size: u64, block: u64) {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(XorKernel));
    let data: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
    platform.fs_mut().create("input.bin", data.clone());

    let ctx = Gmac::new(
        platform,
        GmacConfig::default().protocol(protocol).block_size(block),
    )
    .session();
    let src = ctx.alloc(size).unwrap();
    let dst = ctx.alloc(size).unwrap();

    // Disk straight into shared memory.
    let n = ctx.read_file_to_shared("input.bin", 0, src, size).unwrap();
    assert_eq!(n, size);

    // Kernel transforms src into dst.
    let params = [
        Param::Shared(src),
        Param::Shared(dst),
        Param::U64(size),
        Param::U64(0x77),
    ];
    ctx.call("xor", LaunchDims::for_elements(size, 256), &params)
        .unwrap();
    ctx.sync().unwrap();

    // Shared memory straight back to disk.
    ctx.write_shared_to_file("output.bin", 0, dst, size)
        .unwrap();

    // Validate the file contents against the expected transform.
    let mut out = vec![0u8; size as usize];
    ctx.with_platform(|p| p.fs_mut().read_at("output.bin", 0, &mut out))
        .unwrap();
    let expected: Vec<u8> = data.iter().map(|b| b ^ 0x77).collect();
    assert_eq!(out, expected, "{protocol} pipeline corrupted data");
}

#[test]
fn disk_kernel_disk_pipeline_all_protocols() {
    for protocol in Protocol::ALL {
        pipeline(protocol, 200_000, 16 * 1024);
    }
}

#[test]
fn pipeline_with_odd_sizes_and_tiny_blocks() {
    // Unaligned length, block smaller than a page would be rejected;
    // smallest legal block is one page.
    pipeline(Protocol::Rolling, 12_345, 4096);
    pipeline(Protocol::Lazy, 12_345, 4096);
}

#[test]
fn partial_file_reads_and_offsets() {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(XorKernel));
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 199) as u8).collect();
    platform.fs_mut().create("in.bin", data.clone());
    let ctx = Gmac::new(platform, GmacConfig::default().block_size(8192)).session();
    let obj = ctx.alloc(64 * 1024).unwrap();

    // Read a window from the middle of the file to an offset inside the
    // object (straddling several 8 KiB blocks).
    let n = ctx
        .read_file_to_shared("in.bin", 50_000, obj.byte_add(1000), 30_000)
        .unwrap();
    assert_eq!(n, 30_000);
    let got: Vec<u8> = ctx.load_slice(obj.byte_add(1000), 30_000).unwrap();
    assert_eq!(&got[..], &data[50_000..80_000]);

    // Write a window back at a file offset.
    ctx.write_shared_to_file("out.bin", 7, obj.byte_add(1000), 30_000)
        .unwrap();
    let mut out = vec![0u8; 30_007];
    ctx.with_platform(|p| p.fs_mut().read_at("out.bin", 0, &mut out))
        .unwrap();
    assert_eq!(&out[7..], &data[50_000..80_000]);
    assert!(out[..7].iter().all(|&b| b == 0));
}

#[test]
fn shared_to_shared_memcpy_across_devices_is_host_mediated() {
    // Two devices: copying between objects on different accelerators goes
    // through system memory and stays correct.
    let platform = Platform::desktop_multi_gpu(2);
    platform.register_kernel(Arc::new(XorKernel));
    let ctx = Gmac::new(platform, GmacConfig::default()).session();
    let a = ctx.alloc_on(adsm::hetsim::DeviceId(0), 32 * 1024).unwrap();
    let b = ctx
        .safe_alloc_on(adsm::hetsim::DeviceId(1), 32 * 1024)
        .unwrap();
    ctx.store_slice(a, &vec![0x42u8; 32 * 1024]).unwrap();
    ctx.memcpy(b, a, 32 * 1024).unwrap();
    let got: Vec<u8> = ctx.load_slice(b, 32 * 1024).unwrap();
    assert!(got.iter().all(|&x| x == 0x42));
}
